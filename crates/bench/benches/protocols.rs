//! Criterion benches for the protocols: end-to-end runs of the Figure 2
//! algorithm vs the baselines on the simulator, scaling with `n`, plus the
//! asynchronous algorithm and the threaded runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use setagree_async::{run_async, run_message_passing, AsyncCrashes};
use setagree_bench::{in_condition_input, out_of_condition_input, spread_input};
use setagree_conditions::MaxCondition;
use setagree_core::{
    run_condition_based, run_early_condition_based, run_early_deciding, run_floodset,
    ConditionBasedConfig, FloodSet,
};
use setagree_runtime::run_threaded;
use setagree_sync::{run_protocol, FailurePattern};

fn config_for(n: usize) -> ConditionBasedConfig {
    // t ≈ n/2, k = 2, d = t − 2, ℓ = 2 — a representative operating point.
    let t = n / 2;
    ConditionBasedConfig::builder(n, t, 2)
        .condition_degree(t - 2)
        .ell(2)
        .build()
        .expect("valid for n ≥ 8")
}

fn bench_condition_based(c: &mut Criterion) {
    let mut group = c.benchmark_group("condition_based_run");
    let mut rng = SmallRng::seed_from_u64(7);
    for n in [8usize, 16, 32, 64] {
        let config = config_for(n);
        let oracle = MaxCondition::new(config.legality());
        let inside = in_condition_input(n, config.legality(), &mut rng);
        let outside = out_of_condition_input(n, config.legality());
        let pattern = FailurePattern::none(n);
        group.bench_with_input(BenchmarkId::new("in_condition", n), &n, |b, _| {
            b.iter(|| run_condition_based(&config, &oracle, &inside, &pattern).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("out_of_condition", n), &n, |b, _| {
            b.iter(|| run_condition_based(&config, &oracle, &outside, &pattern).unwrap());
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_run");
    for n in [8usize, 16, 32, 64] {
        let t = n / 2;
        let input = spread_input(n);
        let pattern = FailurePattern::none(n);
        group.bench_with_input(BenchmarkId::new("floodset", n), &n, |b, _| {
            b.iter(|| run_floodset(n, t, 2, &input, &pattern).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("early_deciding", n), &n, |b, _| {
            b.iter(|| run_early_deciding(n, t, 2, &input, &pattern).unwrap());
        });
    }
    group.finish();
}

fn bench_async(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_run");
    let mut rng = SmallRng::seed_from_u64(11);
    for n in [8usize, 16, 32] {
        let params = setagree_conditions::LegalityParams::new(2, 2).unwrap();
        let oracle = MaxCondition::new(params);
        let input = in_condition_input(n, params, &mut rng);
        group.bench_with_input(BenchmarkId::new("shared_memory", n), &n, |b, _| {
            b.iter(|| run_async(&oracle, 2, &input, &AsyncCrashes::none(), 3));
        });
        group.bench_with_input(BenchmarkId::new("message_passing", n), &n, |b, _| {
            b.iter(|| run_message_passing(&oracle, 2, &input, &AsyncCrashes::none(), 3));
        });
    }
    group.finish();
}

fn bench_early_condition(c: &mut Criterion) {
    let mut group = c.benchmark_group("early_condition_run");
    for n in [8usize, 16, 32] {
        let config = config_for(n);
        let oracle = MaxCondition::new(config.legality());
        let outside = out_of_condition_input(n, config.legality());
        let pattern = FailurePattern::none(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| run_early_condition_based(&config, &oracle, &outside, &pattern).unwrap());
        });
    }
    group.finish();
}

fn bench_simulator_vs_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    let n = 16;
    let t = 8;
    let input = spread_input(n);
    let pattern = FailurePattern::none(n);
    group.bench_function("simulator_floodset", |b| {
        b.iter(|| {
            let procs: Vec<FloodSet<u32>> =
                input.iter().map(|&v| FloodSet::new(t, 2, v)).collect();
            run_protocol(procs, &pattern, 12).unwrap()
        });
    });
    group.bench_function("threaded_floodset", |b| {
        b.iter(|| {
            let procs: Vec<FloodSet<u32>> =
                input.iter().map(|&v| FloodSet::new(t, 2, v)).collect();
            run_threaded(procs, &pattern, 12).unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_condition_based,
    bench_baselines,
    bench_async,
    bench_early_condition,
    bench_simulator_vs_threads
);
criterion_main!(benches);
