//! Criterion benches for the conditions framework: legality checking,
//! oracle decoding (analytic vs explicit — an ablation of the
//! `MaxCondition` closed forms), and the counting formulas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use setagree_conditions::{
    counting, legality, ConditionOracle, ExplicitOracle, LegalityParams, MaxCondition, MaxEll,
};
use setagree_types::View;

fn bench_legality_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("legality_check");
    for (n, m) in [(4usize, 2u32), (4, 3), (5, 3)] {
        let params = LegalityParams::new(1, 1).unwrap();
        let cond = MaxCondition::new(params).enumerate(n, m);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}_{}vec", cond.len())),
            &cond,
            |b, cond| {
                b.iter(|| legality::check(cond, &MaxEll::new(1), params).is_ok());
            },
        );
    }
    group.finish();
}

fn bench_decode_view(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_view");
    let params = LegalityParams::new(2, 2).unwrap();
    let analytic = MaxCondition::new(params);
    let explicit = ExplicitOracle::new(analytic.enumerate(5, 4), MaxEll::new(2), params);
    let view = View::from_options(vec![Some(4u32), Some(4), None, Some(2), None]);

    group.bench_function("analytic_max_condition", |b| {
        b.iter(|| analytic.decode_view(&view));
    });
    group.bench_function("explicit_enumerated", |b| {
        b.iter(|| explicit.decode_view(&view));
    });
    group.finish();
}

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting_nb");
    let params = LegalityParams::new(2, 2).unwrap();
    group.bench_function("closed_form_n20_m10", |b| {
        b.iter(|| counting::nb(20, 10, params));
    });
    group.bench_function("brute_force_n5_m4", |b| {
        b.iter(|| counting::nb_brute_force(5, 4, params));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_legality_check,
    bench_decode_view,
    bench_counting
);
criterion_main!(benches);
