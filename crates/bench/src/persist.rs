//! Environment-driven persistence for the table binaries: snapshot
//! cache files and append-only, crash-resumable journals.
//!
//! Two variables control where suite results live across invocations:
//!
//! * `SETAGREE_SUITE_CACHE=/path` — load the cache file before the run
//!   and rewrite it wholesale (atomically) after: the warm-rerun mode
//!   the CI cache smoke exercises.
//! * `SETAGREE_SUITE_JOURNAL=/path` — attach an append-only journal:
//!   every executed cell is flushed to the file *as it completes*, and
//!   the next invocation replays the journal's verified prefix before
//!   executing anything — so a run killed mid-sweep resumes where it
//!   died, re-executing only the missing cells. A torn or corrupted
//!   tail is detected by the hash chain, reported on stderr, and
//!   re-executed, never served.
//!
//! The variables compose: with both set, the journal provides the
//! crash-grained durability and the cache file the end-of-run snapshot.
//! All reporting goes to stderr, keeping stdout byte-diffable between
//! cold, warm and resumed runs.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use setagree_core::{CacheableValue, SuiteCache, SuiteRunStats};

/// A [`SuiteCache`] wired to the persistence the environment asked for.
pub struct SuiteStore<V: CacheableValue> {
    cache: Arc<SuiteCache<V>>,
    save_path: Option<PathBuf>,
    journal_path: Option<PathBuf>,
}

impl<V: CacheableValue> fmt::Debug for SuiteStore<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SuiteStore")
            .field("cache", &self.cache)
            .field("save_path", &self.save_path)
            .field("journal_path", &self.journal_path)
            .finish()
    }
}

impl<V: CacheableValue> SuiteStore<V> {
    /// Builds the store `SETAGREE_SUITE_CACHE` / `SETAGREE_SUITE_JOURNAL`
    /// describe, loading the cache file and/or replaying the journal.
    /// `None` when neither variable is set — the run is purely in-memory.
    ///
    /// # Panics
    ///
    /// On unreadable/corrupt cache files and unwritable journal paths:
    /// the binaries treat a broken persistence request as fatal rather
    /// than silently re-executing everything.
    pub fn from_env() -> Option<Self> {
        let save_path = std::env::var_os("SETAGREE_SUITE_CACHE").map(PathBuf::from);
        let journal_path = std::env::var_os("SETAGREE_SUITE_JOURNAL").map(PathBuf::from);
        if save_path.is_none() && journal_path.is_none() {
            return None;
        }
        let cache = match &save_path {
            Some(path) => {
                let cache = SuiteCache::load_or_empty(path).expect("readable suite cache file");
                eprintln!(
                    "suite cache: loaded {} cell(s) from {}",
                    cache.len(),
                    path.display()
                );
                cache
            }
            None => SuiteCache::new(),
        };
        if let Some(path) = &journal_path {
            let stats = cache
                .resume_journal(path)
                .expect("writable suite journal file");
            eprintln!(
                "suite journal: replayed {} record(s) from {} (tail: {})",
                stats.recovered,
                path.display(),
                stats.tail
            );
        }
        Some(SuiteStore {
            cache: Arc::new(cache),
            save_path,
            journal_path,
        })
    }

    /// The cache to hand to every suite of the run
    /// ([`ScenarioSuite::cache`](setagree_core::ScenarioSuite::cache)).
    pub fn cache(&self) -> &Arc<SuiteCache<V>> {
        &self.cache
    }

    /// Ends the run: saves the cache file (when one was requested) and
    /// reports the run's totals on stderr. Journal appends already
    /// happened cell-by-cell; this only surfaces any append failure.
    ///
    /// # Panics
    ///
    /// When the cache file cannot be written.
    pub fn finish(self, totals: SuiteRunStats) {
        if let Some(kind) = self.cache.journal_error() {
            eprintln!(
                "suite journal: append failed ({kind}); the next resume \
                 re-executes the unjournaled cells"
            );
        }
        match &self.save_path {
            Some(path) => {
                self.cache.save(path).expect("writable suite cache file");
                eprintln!(
                    "suite cache: {} case(s), {} hit(s), {} miss(es); {} cell(s) saved to {}",
                    totals.cases,
                    totals.cache_hits,
                    totals.cache_misses,
                    self.cache.len(),
                    path.display()
                );
            }
            None => {
                let path = self.journal_path.as_ref().expect("store has a path");
                eprintln!(
                    "suite journal: {} case(s), {} hit(s), {} miss(es); {} cell(s) in {}",
                    totals.cases,
                    totals.cache_hits,
                    totals.cache_misses,
                    self.cache.len(),
                    path.display()
                );
            }
        }
    }
}
