//! Shared harness utilities for the table/figure binaries and Criterion
//! benches: workload generators, a plain-text table printer, and the
//! environment-driven cache/journal persistence the binaries share.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod faults;
pub mod metrics;
pub mod persist;
pub mod table;
pub mod workloads;

pub use faults::take_faults_flag;
pub use metrics::MetricsDump;
pub use persist::SuiteStore;
pub use table::{StreamingTable, Table};
pub use workloads::{in_condition_input, out_of_condition_input, spread_input, Workload};
