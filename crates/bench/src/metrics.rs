//! `SETAGREE_METRICS` support for the table binaries: enable the
//! observability registry at startup, dump the process snapshot at
//! exit.
//!
//! Every `table_*` binary opens its `main` with
//! [`MetricsDump::from_env`]; when the variable is unset the guard is
//! inert and the run costs one relaxed atomic load per instrumentation
//! site. With `SETAGREE_METRICS=<path|->` set, the registry is enabled
//! for the whole run and the guard's `Drop` writes the rendered
//! snapshot to the path (stderr for `-`) — including on a panicking
//! exit, so a `FAILED` sweep still ships its telemetry.

use std::fmt;

/// RAII guard: enables metrics from the environment on construction,
/// dumps the global registry's snapshot on drop.
pub struct MetricsDump {
    target: Option<String>,
}

impl fmt::Debug for MetricsDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsDump")
            .field("target", &self.target)
            .finish()
    }
}

impl MetricsDump {
    /// Reads `SETAGREE_METRICS`, enabling the observability registry
    /// when it names a dump target. Keep the guard alive for the whole
    /// run: dropping it writes the snapshot.
    pub fn from_env() -> MetricsDump {
        MetricsDump {
            target: setagree_obs::init_from_env(),
        }
    }

    /// Whether a dump target is configured (metrics are enabled).
    pub fn active(&self) -> bool {
        self.target.is_some()
    }
}

impl Drop for MetricsDump {
    fn drop(&mut self) {
        let Some(target) = &self.target else {
            return;
        };
        let snapshot = setagree_obs::global().snapshot();
        if let Err(e) = setagree_obs::dump(target, &snapshot) {
            eprintln!("metrics: dump to {target} failed: {e}");
        }
    }
}
