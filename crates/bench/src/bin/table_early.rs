//! Regenerates the **early-decision claim** of Section 8: k-set agreement
//! can decide in `min(⌊f/k⌋ + 2, ⌊t/k⌋ + 1)` rounds where `f` is the
//! number of *actual* crashes — the adaptive bound of \[12\] the paper's
//! extension targets. Sweeps `f` and compares the early-deciding protocol
//! against the fixed flood-set baseline, one [`ScenarioSuite`] per `f`.
//!
//! Set `SETAGREE_SUITE_CACHE` and/or `SETAGREE_SUITE_JOURNAL` to
//! persist cells across invocations — a warm rerun prints the same
//! table without re-executing a protocol, and a killed sweep resumes
//! from the journal's verified prefix (see [`SuiteStore`]).
//!
//! ```text
//! cargo run -p setagree-bench --bin table_early
//! ```

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use setagree_core::{ProtocolKind, ProtocolSpec, ScenarioSuite, SuiteCache, SuiteRunStats};
use setagree_sync::{CrashSpec, FailurePattern};
use setagree_types::{InputVector, ProcessId};

use setagree_bench::{MetricsDump, SuiteStore, Table};

fn with_cache(
    suite: ScenarioSuite<u32>,
    cache: &Option<Arc<SuiteCache<u32>>>,
) -> ScenarioSuite<u32> {
    match cache {
        Some(cache) => suite.cache(cache),
        None => suite,
    }
}

fn main() {
    let _metrics = MetricsDump::from_env();
    let n = 12;
    let t = 8;
    let k = 2;
    let store: Option<SuiteStore<u32>> = SuiteStore::from_env();
    let cache = store.as_ref().map(|s| Arc::clone(s.cache()));
    let mut run_totals = SuiteRunStats::default();
    let mut table = Table::new(vec![
        "f",
        "bound min(⌊f/k⌋+2, ⌊t/k⌋+1)",
        "early worst",
        "floodset",
        "ok",
    ]);
    let mut all_ok = true;

    for f in 0..=t {
        let bound = (f / k + 2).min(t / k + 1);

        // Early-deciding and flood-set, over shuffled inputs × exactly-f
        // adversaries — including the adaptive worst case: k silent
        // crashes per round keep the early rule from firing as long as
        // crashes last.
        let outcome = with_cache(ScenarioSuite::new(), &cache)
            .spec(ProtocolSpec::early_deciding(n, t, k))
            .spec(ProtocolSpec::flood_set(n, t, k))
            .inputs((0..10).map(|seed| shuffled_input(n, seed)))
            .patterns((0..10u64).map(|seed| crash_f(n, f, seed).into()))
            .pattern(silent_staircase(n, f, k))
            .run();
        assert!(outcome.all_satisfy_properties(), "properties at f = {f}");
        run_totals.cases += outcome.len();
        run_totals.cache_hits += outcome.cache_hits();
        run_totals.cache_misses += outcome.cache_misses();

        let mut early_worst = 0;
        let mut floodset_worst = 0;
        for report in outcome.reports() {
            let rounds = report.decision_round().unwrap_or(0);
            match report.protocol() {
                ProtocolKind::EarlyDeciding => early_worst = early_worst.max(rounds),
                _ => floodset_worst = floodset_worst.max(rounds),
            }
        }

        let ok = early_worst <= bound;
        all_ok &= ok;
        table.row(vec![
            f.to_string(),
            bound.to_string(),
            early_worst.to_string(),
            floodset_worst.to_string(),
            if ok { "ok".into() } else { "FAIL".into() },
        ]);
    }

    println!("Early decision: rounds vs actual crashes f (n = {n}, t = {t}, k = {k})");
    println!();
    println!("{table}");
    println!(
        "shape: early-deciding tracks ⌊f/k⌋+2 while the baseline stays at ⌊t/k⌋+1 = {} — {}",
        t / k + 1,
        if all_ok { "VERIFIED" } else { "FAILED" }
    );
    if let Some(store) = store {
        store.finish(run_totals);
    }
    assert!(all_ok);
}

/// A deterministic pseudo-shuffled input.
fn shuffled_input(n: usize, seed: u64) -> InputVector<u32> {
    let mut entries: Vec<u32> = (1..=n as u32).collect();
    use rand::seq::SliceRandom;
    entries.shuffle(&mut SmallRng::seed_from_u64(seed));
    InputVector::new(entries)
}

/// The worst case for early decision: `k` crashes per round, each silent
/// (empty send prefix), so every round perceives exactly `k` new failures
/// until the budget runs out.
fn silent_staircase(n: usize, f: usize, k: usize) -> FailurePattern {
    let mut pattern = FailurePattern::none(n);
    for i in 0..f {
        let victim = ProcessId::new(n - 1 - i);
        let round = i / k + 1;
        pattern
            .crash(victim, CrashSpec::new(round, 0))
            .expect("valid");
    }
    pattern
}

/// Exactly `f` crashes spread over rounds with assorted prefixes.
fn crash_f(n: usize, f: usize, seed: u64) -> FailurePattern {
    use rand::Rng;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut pattern = FailurePattern::none(n);
    for i in 0..f {
        let victim = ProcessId::new(n - 1 - i);
        let round = rng.gen_range(1..=3);
        let prefix = rng.gen_range(0..=n);
        pattern
            .crash(victim, CrashSpec::new(round, prefix))
            .expect("valid");
    }
    pattern
}
