//! Regenerates the **asynchronous claims** of Section 4: with an
//! (x, ℓ)-legal condition, ℓ-set agreement becomes solvable in an
//! asynchronous shared-memory system prone to `x` crashes — termination
//! whenever the input is in the condition and at most `x` processes crash,
//! at most ℓ values decided, and honest blocking outside the condition
//! (the impossibility is *circumvented*, not broken).
//!
//! Runs through the unified `Scenario`/`Executor` API: the seeded
//! schedule adversaries are `Executor::AsyncSharedMemory { seed }` /
//! `Executor::AsyncMessagePassing { seed }` executors, and the
//! out-of-condition sweep is a `ScenarioSuite` grid over executors
//! (one cell per seed).
//!
//! ```text
//! cargo run -p setagree-bench --bin table_async
//! ```

use setagree_conditions::{LegalityParams, MaxCondition};
use setagree_core::{AsyncCrashes, Executor, ProtocolSpec, Scenario, ScenarioSuite};
use setagree_types::ProcessId;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use setagree_bench::{in_condition_input, out_of_condition_input, Table};

fn main() {
    let n = 8;
    let seeds = 25u64;
    let mut table = Table::new(vec![
        "x",
        "ℓ",
        "input",
        "crashes",
        "runs",
        "terminated",
        "max |decided|",
        "blocked",
        "ok",
    ]);
    let mut all_ok = true;
    let mut rng = SmallRng::seed_from_u64(0xA57C);

    for (x, ell) in [(1usize, 1usize), (2, 1), (2, 2), (3, 2)] {
        let params = LegalityParams::new(x, ell).unwrap();
        let oracle = MaxCondition::new(params);

        for crashes in 0..=x {
            let mut terminated = 0;
            let mut max_decided = 0;
            let mut blocked = 0;
            for seed in 0..seeds {
                let input = in_condition_input(n, params, &mut rng);
                let report = Scenario::async_set_agreement(n, params, oracle)
                    .input(input)
                    .pattern(crash_schedule(crashes, seed))
                    .executor(Executor::AsyncSharedMemory { seed })
                    .run()
                    .expect("valid asynchronous scenario");
                if report.satisfies_termination() {
                    terminated += 1;
                }
                max_decided = max_decided.max(report.decided_values().len());
                blocked += report.async_report().expect("async run").blocked_count();
            }
            let ok = terminated == seeds as usize && max_decided <= ell && blocked == 0;
            all_ok &= ok;
            table.row(vec![
                x.to_string(),
                ell.to_string(),
                "∈ C".into(),
                crashes.to_string(),
                seeds.to_string(),
                terminated.to_string(),
                max_decided.to_string(),
                blocked.to_string(),
                if ok { "ok".into() } else { "FAIL".into() },
            ]);
        }

        // Outside the condition (only expressible when ℓ ≤ x): termination
        // is forfeited — processes whose snapshot proves I ∉ C block.
        // Optimistic early snapshots (still compatible with C) may decide;
        // agreement must hold among them regardless. One fixed input, a
        // suite grid over seed-carrying executors: one cell per schedule.
        if ell <= x {
            let outcome = ScenarioSuite::new()
                .spec(ProtocolSpec::async_set_agreement(n, params, oracle))
                .input(out_of_condition_input(n, params))
                .executors((0..seeds).map(|seed| Executor::AsyncSharedMemory { seed }))
                .run();
            let mut blocked_total = 0;
            let mut max_decided = 0;
            let mut settled_ok = true;
            for case in outcome.cases() {
                let report = case.result.as_ref().expect("grid cases are valid");
                let raw = report.async_report().expect("async run");
                blocked_total += raw.blocked_count();
                max_decided = max_decided.max(report.decided_values().len());
                settled_ok &= raw.all_settled_or_crashed();
            }
            let ok = settled_ok && max_decided <= ell && blocked_total > 0;
            all_ok &= ok;
            table.row(vec![
                x.to_string(),
                ell.to_string(),
                "∉ C".into(),
                "0".into(),
                seeds.to_string(),
                "-".into(),
                max_decided.to_string(),
                blocked_total.to_string(),
                if ok { "ok".into() } else { "FAIL".into() },
            ]);
        }
    }

    println!("Asynchronous condition-based ℓ-set agreement (n = {n}) — Section 4");
    println!("(shared-memory substrate: registers + atomic snapshot)");
    println!();
    println!("{table}");
    println!(
        "shape: terminates with ≤ ℓ values under ≤ x crashes when I ∈ C; \
         forfeits termination (some processes block) when I ∉ C — {}",
        if all_ok { "VERIFIED" } else { "FAILED" }
    );
    assert!(all_ok);

    // The message-passing substrate: same in-condition guarantees.
    println!();
    println!("Message-passing substrate (reliable channels, adversarial delivery):");
    println!();
    let mut mp = Table::new(vec![
        "x",
        "ℓ",
        "crashes",
        "runs",
        "terminated",
        "max |decided|",
        "ok",
    ]);
    let mut mp_ok = true;
    for (x, ell) in [(1usize, 1usize), (2, 2)] {
        let params = LegalityParams::new(x, ell).unwrap();
        let oracle = MaxCondition::new(params);
        for crashes in 0..=x {
            let mut terminated = 0;
            let mut max_decided = 0;
            for seed in 0..seeds {
                let input = in_condition_input(n, params, &mut rng);
                let report = Scenario::async_set_agreement(n, params, oracle)
                    .input(input)
                    .pattern(crash_schedule(crashes, seed))
                    .executor(Executor::AsyncMessagePassing { seed })
                    .run()
                    .expect("valid asynchronous scenario");
                if report.satisfies_termination() {
                    terminated += 1;
                }
                max_decided = max_decided.max(report.decided_values().len());
            }
            let ok = terminated == seeds as usize && max_decided <= ell;
            mp_ok &= ok;
            mp.row(vec![
                x.to_string(),
                ell.to_string(),
                crashes.to_string(),
                seeds.to_string(),
                terminated.to_string(),
                max_decided.to_string(),
                if ok { "ok".into() } else { "FAIL".into() },
            ]);
        }
    }
    println!("{mp}");
    println!(
        "in-condition guarantees carry over to native message passing — {}",
        if mp_ok { "VERIFIED" } else { "FAILED" }
    );
    println!(
        "(outside the condition, the raw collect is unsafe without register \
         emulation — see setagree-async::message_passing docs)"
    );
    assert!(mp_ok);
}

/// Crashes the `count` highest processes after 0/1/2 own steps.
fn crash_schedule(count: usize, seed: u64) -> AsyncCrashes {
    let mut schedule = AsyncCrashes::none();
    for i in 0..count {
        schedule = schedule.crash_after(ProcessId::new(7 - i), (seed + i as u64) % 3);
    }
    schedule
}
