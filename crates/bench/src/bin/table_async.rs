//! Regenerates the **asynchronous claims** of Section 4: with an
//! (x, ℓ)-legal condition, ℓ-set agreement becomes solvable in an
//! asynchronous shared-memory system prone to `x` crashes — termination
//! whenever the input is in the condition and at most `x` processes crash,
//! at most ℓ values decided, and honest blocking outside the condition
//! (the impossibility is *circumvented*, not broken).
//!
//! Runs through the unified `Scenario`/`Executor` API, entirely as
//! `ScenarioSuite`s:
//!
//! * the in-condition sweeps pair input #i with seed-i executors and
//!   schedules via explicit `cases(...)` — a per-cell pairing the
//!   cartesian product cannot express — with inputs from a seeded
//!   [`Workload`] spec, so every sweep replays from this file alone;
//! * the out-of-condition sweep is a grid over seed-carrying executors,
//!   consumed via `run_streaming` (aggregates update as schedules
//!   finish; nothing buffers the grid);
//! * set `SETAGREE_SUITE_CACHE=/path/to/file` and every suite runs
//!   against a persisted [`SuiteCache`]: the second invocation serves
//!   all cells warm — zero protocol executions — and prints the
//!   identical table (the CI smoke step diffs exactly this). Cache
//!   statistics go to stderr, keeping stdout diffable;
//! * set `SETAGREE_SUITE_JOURNAL=/path/to/file` and every executed cell
//!   is appended to a hash-chained journal *as it completes*; a killed
//!   run resumes by replaying the journal's verified prefix — only the
//!   missing cells re-execute, and a torn tail is detected and
//!   re-executed, never served (the CI journal smoke truncates the file
//!   mid-record and diffs the resumed run's table). Composes with the
//!   cache file; see [`SuiteStore`] for the full contract;
//! * pass `--shard i/m` (0 ≤ i < m) to split the run across processes:
//!   the shard claims every m-th cell of the deterministic sweep order
//!   (cell c belongs to shard c mod m), executes only those, and merges
//!   its results into the shared cache file. Shards print a one-line
//!   summary instead of the tables — run every shard against one
//!   `SETAGREE_SUITE_CACHE`, then an unsharded invocation serves the
//!   whole table warm (the shards' key sets are disjoint, so each run's
//!   load-execute-save unions cleanly). Shard runs sharing one cache
//!   file must be **sequential**: `save` rewrites the file wholesale,
//!   so a concurrent writer would clobber keys saved after it loaded.
//!   Shards that must run concurrently need a cache file each.
//! * pass `--faults seed:rate` to append a synchronous **omission
//!   cross-check**: the same conditions under the simulator's
//!   `Adversary::Omission` (seeded link drops layered under round-1
//!   crashes). The async substrates refuse live fault plans — asynchrony
//!   already subsumes omission-by-delay — so the cross-check runs where
//!   omission is a first-class adversary; its cells share the claimer
//!   and cache, so omission sweeps are cached/sharded/journaled like
//!   every other cell.
//!
//! ```text
//! cargo run -p setagree-bench --bin table_async
//! # or, split across sequential processes:
//! SETAGREE_SUITE_CACHE=f cargo run -p setagree-bench --bin table_async -- --shard 0/2
//! SETAGREE_SUITE_CACHE=f cargo run -p setagree-bench --bin table_async -- --shard 1/2
//! SETAGREE_SUITE_CACHE=f cargo run -p setagree-bench --bin table_async
//! ```

use std::process::exit;
use std::sync::Arc;

use setagree_conditions::{LegalityParams, MaxCondition};
use setagree_core::{
    Adversary, AsyncCrashes, CaseSpec, ConditionBasedConfig, Executor, FaultPlan, ProtocolSpec,
    ScenarioSuite, SuiteCache, SuiteRunStats,
};
use setagree_sync::{CrashSpec, FailurePattern};
use setagree_types::ProcessId;

use setagree_bench::{take_faults_flag, MetricsDump, SuiteStore, Table, Workload};

/// One shard of a cross-process run: this process claims the cells whose
/// position in the deterministic sweep order is ≡ `index` (mod `modulus`).
#[derive(Debug, Clone, Copy)]
struct Shard {
    index: usize,
    modulus: usize,
}

/// Walks the deterministic cell order and decides which cells this
/// process executes. Unsharded runs claim everything; the cursor still
/// advances identically either way, so every shard agrees on which cell
/// is which.
#[derive(Debug)]
struct CellClaimer {
    shard: Option<Shard>,
    cursor: usize,
    claimed: usize,
}

impl CellClaimer {
    fn new(shard: Option<Shard>) -> Self {
        CellClaimer {
            shard,
            cursor: 0,
            claimed: 0,
        }
    }

    fn sharded(&self) -> bool {
        self.shard.is_some()
    }

    /// Claims (or passes over) the next cell of the global order.
    fn claims(&mut self) -> bool {
        let mine = match self.shard {
            None => true,
            Some(s) => self.cursor % s.modulus == s.index,
        };
        self.cursor += 1;
        if mine {
            self.claimed += 1;
        }
        mine
    }
}

/// Parses `--shard i/m` / `--shard=i/m` from the remaining arguments.
fn parse_shard(remaining: Vec<String>) -> Option<Shard> {
    let mut args = remaining.into_iter();
    let mut shard = None;
    while let Some(arg) = args.next() {
        let value = if let Some(v) = arg.strip_prefix("--shard=") {
            v.to_string()
        } else if arg == "--shard" {
            match args.next() {
                Some(v) => v,
                None => usage("--shard needs a value"),
            }
        } else {
            usage(&format!("unknown argument `{arg}`"))
        };
        let Some((i, m)) = value.split_once('/') else {
            usage(&format!("malformed shard `{value}`"))
        };
        let (Ok(index), Ok(modulus)) = (i.parse::<usize>(), m.parse::<usize>()) else {
            usage(&format!("malformed shard `{value}`"))
        };
        if modulus == 0 || index >= modulus {
            usage(&format!("shard index {index} outside 0..{modulus}"));
        }
        shard = Some(Shard { index, modulus });
    }
    shard
}

fn usage(problem: &str) -> ! {
    eprintln!("{problem}\nusage: table_async [--shard i/m] [--faults seed:rate]  (0 <= i < m)");
    exit(2)
}

/// The table's aggregate over one sweep of seeds.
#[derive(Default)]
struct SweepStats {
    terminated: usize,
    max_decided: usize,
    blocked: usize,
    settled_ok: bool,
}

fn main() {
    let _metrics = MetricsDump::from_env();
    let n = 8;
    let seeds = 25u64;
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let faults = match take_faults_flag(&mut args) {
        Ok(faults) => faults,
        Err(problem) => usage(&problem),
    };
    let shard = parse_shard(args);
    let mut claimer = CellClaimer::new(shard);
    let store: Option<SuiteStore<u32>> = SuiteStore::from_env();
    let cache = store.as_ref().map(|s| Arc::clone(s.cache()));
    if shard.is_some() && cache.is_none() {
        eprintln!(
            "note: --shard without SETAGREE_SUITE_CACHE executes its cells \
             but has nowhere to merge them"
        );
    }
    let mut run_totals = SuiteRunStats::default();

    let mut table = Table::new(vec![
        "x",
        "ℓ",
        "input",
        "crashes",
        "runs",
        "terminated",
        "max |decided|",
        "blocked",
        "ok",
    ]);
    let mut all_ok = true;

    for (x, ell) in [(1usize, 1usize), (2, 1), (2, 2), (3, 2)] {
        let params = LegalityParams::new(x, ell).unwrap();
        let oracle = MaxCondition::new(params);

        for crashes in 0..=x {
            let stats = in_condition_sweep(
                n,
                params,
                oracle,
                crashes,
                seeds,
                Substrate::SharedMemory,
                &cache,
                &mut run_totals,
                &mut claimer,
            );
            let ok = stats.terminated == seeds as usize
                && stats.max_decided <= ell
                && stats.blocked == 0;
            all_ok &= ok;
            table.row(vec![
                x.to_string(),
                ell.to_string(),
                "∈ C".into(),
                crashes.to_string(),
                seeds.to_string(),
                stats.terminated.to_string(),
                stats.max_decided.to_string(),
                stats.blocked.to_string(),
                verdict(ok),
            ]);
        }

        // Outside the condition (only expressible when ℓ ≤ x): termination
        // is forfeited — processes whose snapshot proves I ∉ C block.
        // Optimistic early snapshots (still compatible with C) may decide;
        // agreement must hold among them regardless. One fixed input, a
        // suite grid over seed-carrying executors: one cell per schedule,
        // aggregated as the schedules finish.
        if ell <= x {
            let mut stats = SweepStats {
                settled_ok: true,
                ..SweepStats::default()
            };
            // Explicit cases rather than an executor grid: a shard that
            // claims none of this sweep's cells must run zero cells, and
            // an executor-less *grid* would fall back to the implicit
            // simulator. Cell-for-cell identical to the former grid when
            // unsharded (one spec × one input × the seed executors).
            let spec = Arc::new(ProtocolSpec::async_set_agreement(n, params, oracle));
            let input = Arc::new(Workload::OutOfCondition { n, params }.inputs().remove(0));
            let suite = with_cache(
                ScenarioSuite::new().cases((0..seeds).filter(|_| claimer.claims()).map(|seed| {
                    CaseSpec::shared(
                        Arc::clone(&spec),
                        Arc::clone(&input),
                        Executor::AsyncSharedMemory { seed },
                    )
                })),
                &cache,
            );
            let run = suite.run_streaming(|case| {
                let report = case.result.as_ref().expect("grid cases are valid");
                let raw = report.async_report().expect("async run");
                stats.blocked += raw.blocked_count();
                stats.max_decided = stats.max_decided.max(report.decided_values().len());
                stats.settled_ok &= raw.all_settled_or_crashed();
            });
            accumulate(&mut run_totals, run);
            let ok = stats.settled_ok && stats.max_decided <= ell && stats.blocked > 0;
            all_ok &= ok;
            table.row(vec![
                x.to_string(),
                ell.to_string(),
                "∉ C".into(),
                "0".into(),
                seeds.to_string(),
                "-".into(),
                stats.max_decided.to_string(),
                stats.blocked.to_string(),
                verdict(ok),
            ]);
        }
    }

    let sharded = claimer.sharded();
    if !sharded {
        println!("Asynchronous condition-based ℓ-set agreement (n = {n}) — Section 4");
        println!(
            "({} substrate: registers + atomic snapshot)",
            Substrate::SharedMemory.label()
        );
        println!();
        println!("{table}");
        println!(
            "shape: terminates with ≤ ℓ values under ≤ x crashes when I ∈ C; \
             forfeits termination (some processes block) when I ∉ C — {}",
            if all_ok { "VERIFIED" } else { "FAILED" }
        );
        assert!(all_ok);
    }

    // The message-passing substrate: same in-condition guarantees.
    if !sharded {
        println!();
        println!(
            "{} substrate (reliable channels, adversarial delivery):",
            Substrate::MessagePassing.label()
        );
        println!();
    }
    let mut mp = Table::new(vec![
        "x",
        "ℓ",
        "crashes",
        "runs",
        "terminated",
        "max |decided|",
        "ok",
    ]);
    let mut mp_ok = true;
    for (x, ell) in [(1usize, 1usize), (2, 2)] {
        let params = LegalityParams::new(x, ell).unwrap();
        let oracle = MaxCondition::new(params);
        for crashes in 0..=x {
            let stats = in_condition_sweep(
                n,
                params,
                oracle,
                crashes,
                seeds,
                Substrate::MessagePassing,
                &cache,
                &mut run_totals,
                &mut claimer,
            );
            let ok = stats.terminated == seeds as usize && stats.max_decided <= ell;
            mp_ok &= ok;
            mp.row(vec![
                x.to_string(),
                ell.to_string(),
                crashes.to_string(),
                seeds.to_string(),
                stats.terminated.to_string(),
                stats.max_decided.to_string(),
                verdict(ok),
            ]);
        }
    }
    if !sharded {
        println!("{mp}");
        println!(
            "in-condition guarantees carry over to native message passing — {}",
            if mp_ok { "VERIFIED" } else { "FAILED" }
        );
        println!(
            "(outside the condition, the raw collect is unsafe without register \
             emulation — see setagree-async::message_passing docs)"
        );
        assert!(mp_ok);
    }

    // With --faults: a synchronous omission cross-check. The async
    // substrates refuse live fault plans by design (asynchrony already
    // subsumes omission-by-delay, and silently dropping the plan would
    // mislabel a benign run as a faulty one — see run_on_async), so the
    // omission sweep drives the same conditions through the simulator's
    // omission adversary. Its cells flow through the same claimer and
    // cache: omission sweeps join the cached / sharded / journaled
    // pipeline like every other cell.
    if let Some((fault_seed, rate)) = faults {
        let mut om = Table::new(vec![
            "x",
            "ℓ",
            "crashes",
            "runs",
            "terminated",
            "valid",
            "max |decided|",
            "ok",
        ]);
        let mut om_ok = true;
        for (x, ell) in [(1usize, 1usize), (2, 1), (2, 2), (3, 2)] {
            let params = LegalityParams::new(x, ell).unwrap();
            let oracle = MaxCondition::new(params);
            // A degree-2 condition with t = x + 2 reproduces the pair's
            // legality: (t − d, ℓ) = (x, ℓ).
            let config = ConditionBasedConfig::builder(n, x + 2, ell)
                .condition_degree(2)
                .ell(ell)
                .build()
                .expect("omission cross-check configs are valid");
            let inputs = Workload::InCondition {
                n,
                params,
                seed: 0x0A15 ^ workload_seed(params, x, Substrate::SharedMemory),
                count: seeds as usize,
            }
            .inputs();
            let spec = Arc::new(ProtocolSpec::condition_based(config, oracle));
            let suite = with_cache(
                ScenarioSuite::new().cases((0..seeds).filter(|_| claimer.claims()).map(|seed| {
                    let mut crashes = FailurePattern::none(n);
                    for i in 0..x {
                        crashes
                            .crash(
                                ProcessId::new(n - 1 - i),
                                CrashSpec::new(1, (seed as usize + i) % n),
                            )
                            .expect("valid spec");
                    }
                    CaseSpec::shared(
                        Arc::clone(&spec),
                        Arc::new(inputs[seed as usize].clone()),
                        Executor::Simulator,
                    )
                    .pattern(Adversary::Omission {
                        plan: FaultPlan::uniform_drop(n, fault_seed ^ seed, rate),
                        crashes,
                    })
                })),
                &cache,
            );
            let (mut runs, mut terminated, mut valid, mut max_decided) = (0usize, 0usize, 0, 0);
            let run = suite.run_streaming(|case| {
                let report = case.result.as_ref().expect("omission cases are valid");
                runs += 1;
                if report.satisfies_termination() {
                    terminated += 1;
                }
                if report.satisfies_validity() {
                    valid += 1;
                }
                max_decided = max_decided.max(report.decided_values().len());
            });
            accumulate(&mut run_totals, run);
            // Omission faults void the crash-model ≤ ℓ bound; the
            // robustness contract is a principled, honest run.
            let ok = terminated == runs && valid == runs;
            om_ok &= ok;
            om.row(vec![
                x.to_string(),
                ell.to_string(),
                x.to_string(),
                runs.to_string(),
                terminated.to_string(),
                valid.to_string(),
                max_decided.to_string(),
                verdict(ok),
            ]);
        }
        if !sharded {
            println!();
            println!(
                "omission cross-check ({} executor, seeded link drops {fault_seed}:{rate}/10000):",
                Executor::Simulator.label()
            );
            println!();
            println!("{om}");
            println!(
                "omission runs terminate with honest, valid Reports; agreement spread \
                 is data — {}",
                if om_ok { "VERIFIED" } else { "FAILED" }
            );
            assert!(om_ok);
        }
    }

    if sharded {
        let Shard { index, modulus } = shard.expect("sharded");
        // The shard's aggregates cover only its own cells, so the table
        // verdicts are meaningless here; the full table comes from an
        // unsharded run against the merged cache.
        println!(
            "shard {index}/{modulus}: executed {} of {} cell(s) across the {} and {} executors",
            claimer.claimed,
            claimer.cursor,
            Substrate::SharedMemory.label(),
            Substrate::MessagePassing.label()
        );
    }

    if let Some(store) = store {
        store.finish(run_totals);
    }
}

#[derive(Clone, Copy)]
enum Substrate {
    SharedMemory,
    MessagePassing,
}

impl Substrate {
    /// The seed-`seed` executor of this substrate.
    fn executor(self, seed: u64) -> Executor {
        match self {
            Substrate::SharedMemory => Executor::AsyncSharedMemory { seed },
            Substrate::MessagePassing => Executor::AsyncMessagePassing { seed },
        }
    }

    /// The substrate's display name — the executor family's own label,
    /// so headings and shard summaries never drift from the `Report`s.
    fn label(self) -> &'static str {
        self.executor(0).label()
    }
}

/// One in-condition sweep: `seeds` cases pairing input #i with the
/// seed-i executor and the seed-i crash schedule — a per-cell pairing
/// (`cases(...)`), not a product, streamed into the aggregate. A shard
/// claims its cells through `claimer` and skips the rest.
#[allow(clippy::too_many_arguments)]
fn in_condition_sweep(
    n: usize,
    params: LegalityParams,
    oracle: MaxCondition,
    crashes: usize,
    seeds: u64,
    substrate: Substrate,
    cache: &Option<Arc<SuiteCache<u32>>>,
    run_totals: &mut SuiteRunStats,
    claimer: &mut CellClaimer,
) -> SweepStats {
    let workload = Workload::InCondition {
        n,
        params,
        seed: workload_seed(params, crashes, substrate),
        count: seeds as usize,
    };
    let inputs = workload.inputs();
    let spec = Arc::new(ProtocolSpec::async_set_agreement(n, params, oracle));
    let suite = with_cache(
        ScenarioSuite::new().cases((0..seeds).filter(|_| claimer.claims()).map(|seed| {
            let executor = substrate.executor(seed);
            CaseSpec::shared(
                Arc::clone(&spec),
                Arc::new(inputs[seed as usize].clone()),
                executor,
            )
            .pattern(crash_schedule(n, crashes, seed))
        })),
        cache,
    );
    let mut stats = SweepStats::default();
    let run = suite.run_streaming(|case| {
        let report = case.result.as_ref().expect("valid asynchronous scenario");
        if report.satisfies_termination() {
            stats.terminated += 1;
        }
        stats.max_decided = stats.max_decided.max(report.decided_values().len());
        stats.blocked += report.async_report().expect("async run").blocked_count();
    });
    accumulate(run_totals, run);
    stats
}

/// A per-sweep workload seed: distinct sweeps draw distinct inputs, and
/// every invocation of the binary draws the same.
fn workload_seed(params: LegalityParams, crashes: usize, substrate: Substrate) -> u64 {
    let base = match substrate {
        Substrate::SharedMemory => 0xA57C,
        Substrate::MessagePassing => 0x175C,
    };
    base ^ ((params.x() as u64) << 16) ^ ((params.ell() as u64) << 8) ^ crashes as u64
}

/// Crashes the `count` highest processes after 0/1/2 own steps.
fn crash_schedule(n: usize, count: usize, seed: u64) -> AsyncCrashes {
    let mut schedule = AsyncCrashes::none();
    for i in 0..count {
        schedule = schedule.crash_after(ProcessId::new(n - 1 - i), (seed + i as u64) % 3);
    }
    schedule
}

fn verdict(ok: bool) -> String {
    if ok {
        "ok".into()
    } else {
        "FAIL".into()
    }
}

fn accumulate(totals: &mut SuiteRunStats, run: SuiteRunStats) {
    totals.cases += run.cases;
    totals.cache_hits += run.cache_hits;
    totals.cache_misses += run.cache_misses;
}

fn with_cache(
    suite: ScenarioSuite<u32, MaxCondition>,
    cache: &Option<Arc<SuiteCache<u32>>>,
) -> ScenarioSuite<u32, MaxCondition> {
    match cache {
        Some(cache) => suite.cache(cache),
        None => suite,
    }
}
