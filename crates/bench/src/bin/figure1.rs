//! Regenerates **Figure 1**: the global inclusion picture of the
//! (x, ℓ)-legal condition families.
//!
//! For each pair (x, ℓ) over a small grid the binary reports:
//!
//! * whether the all-vectors condition is (x, ℓ)-legal — the analytic
//!   frontier `ℓ > x` (Theorems 8/9), verified *empirically* for a small
//!   system by exhaustive recognizing-function search;
//! * the family-inclusion arrows to the right/up neighbours (Theorems
//!   4–7), verified by the strictness witnesses.
//!
//! ```text
//! cargo run -p setagree-bench --bin figure1
//! ```

use setagree_conditions::{lattice, legality, witness, Condition, LegalityParams, MaxEll};
use setagree_types::InputVector;

use setagree_bench::Table;

fn main() {
    // System for the frontier check: n = m = 3 so the all-distinct vector
    // exists (Theorem 9 presumes the value universe is rich enough — over
    // tiny universes pigeonhole can make C_all legal below the frontier).
    let n = 3;
    let m = 3u32;
    let all_vectors = enumerate_all(n, m);

    println!("Figure 1 — the lattice of (x, ℓ)-legal families (empirical, n = {n}, m = {m})");
    println!();
    let mut grid = Table::new(vec!["x \\ ℓ", "ℓ=1", "ℓ=2", "ℓ=3"]);
    for x in 0..n {
        let mut cells = vec![format!("x={x}")];
        for ell in 1..=n {
            let params = LegalityParams::new(x, ell).unwrap();
            let legal = if params.admits_all_vectors() {
                // ℓ > x: by Theorem 2 + maximality, C_all is legal iff it
                // coincides with the enumerated C_max(x, ℓ).
                let c_max = setagree_conditions::MaxCondition::new(params).enumerate(n, m);
                c_max.len() == all_vectors.len()
            } else {
                // ℓ ≤ x: the all-distinct vector (1, …, n) admits no dense
                // decoding (any ℓ values occupy ℓ ≤ x entries), so any
                // condition containing it — C_all in particular — is not
                // (x, ℓ)-legal. Legality is downward closed, so this is a
                // sound refutation.
                let distinct = Condition::from_vectors(vec![InputVector::new(
                    (1..=n as u32).collect::<Vec<u32>>(),
                )])
                .expect("non-empty");
                let refuted = witness::find_recognizing(&distinct, params).is_none();
                assert!(refuted, "Theorem 9 refutation failed at {params}");
                false
            };
            assert_eq!(
                params.admits_all_vectors(),
                legal,
                "Theorems 8/9 frontier violated at {params}"
            );
            cells.push(if legal { "C_all ∈" } else { "C_all ∉" }.to_string());
        }
        grid.row(cells);
    }
    println!("{grid}");
    println!("frontier check: C_all is (x, ℓ)-legal ⟺ ℓ > x   [Theorems 8, 9] — VERIFIED");
    println!();

    // Inclusion arrows with strictness witnesses.
    let mut arrows = Table::new(vec!["relation", "theorem", "witness", "verdict"]);
    // (x+1, ℓ) ⊆ (x, ℓ), strict: Theorem 4 + 5.
    let p11 = LegalityParams::new(1, 1).unwrap();
    let p21 = LegalityParams::new(2, 1).unwrap();
    let w5 = witness::theorem_5_witness(4, 3, p11);
    let w5_ok = legality::check(&w5, &MaxEll::new(1), p11).is_ok()
        && witness::find_recognizing(&small(&w5, 3), p21).is_none();
    arrows.row(vec![
        "F(2,1) ⊊ F(1,1)".into(),
        "Th 4+5".into(),
        format!("{} vectors", w5.len()),
        verdict(lattice::implies(p21, p11) && !lattice::implies(p11, p21) && w5_ok),
    ]);
    // (x, ℓ) ⊆ (x, ℓ+1), strict: Theorem 6 + 7.
    let p22 = LegalityParams::new(2, 2).unwrap();
    let w7 = witness::theorem_7_witness(4, 3, p21);
    let w7_ok = legality::check(&w7, &MaxEll::new(2), p22).is_ok()
        && witness::find_recognizing(&small(&w7, 3), p21).is_none();
    arrows.row(vec![
        "F(2,1) ⊊ F(2,2)".into(),
        "Th 6+7".into(),
        format!("{} vectors", w7.len()),
        verdict(lattice::implies(p21, p22) && !lattice::implies(p22, p21) && w7_ok),
    ]);
    // Diagonal incomparability: Theorems 14 (Table 1) and 15.
    let (t1, h1) = witness::table_1();
    let t14_ok =
        legality::check(&t1, &h1, p11).is_ok() && witness::find_recognizing(&t1, p22).is_none();
    arrows.row(vec![
        "F(1,1) ∦ F(2,2)".into(),
        "Th 14".into(),
        "Table 1".into(),
        verdict(t14_ok),
    ]);
    let p32 = LegalityParams::new(3, 2).unwrap();
    let p33 = LegalityParams::new(3, 3).unwrap();
    let (w15, h15) = witness::theorem_15_witness(7, p32);
    let t15_ok =
        legality::check(&w15, &h15, p33).is_ok() && witness::find_recognizing(&w15, p32).is_none();
    arrows.row(vec![
        "F(3,3) ⊄ F(3,2)".into(),
        "Th 15".into(),
        format!("{} vectors", w15.len()),
        verdict(t15_ok),
    ]);
    println!("{arrows}");
}

/// The condition containing every vector over values `{1..m}`.
fn enumerate_all(n: usize, m: u32) -> Condition<u32> {
    let mut cond = Condition::new(n);
    let total = (m as usize).pow(n as u32);
    for code in 0..total {
        let mut c = code;
        let entries: Vec<u32> = (0..n)
            .map(|_| {
                let v = (c % m as usize) as u32 + 1;
                c /= m as usize;
                v
            })
            .collect();
        cond.insert(InputVector::new(entries)).expect("length n");
    }
    cond
}

/// A small sub-condition (first `k` vectors) for the exhaustive searches.
fn small(cond: &Condition<u32>, k: usize) -> Condition<u32> {
    Condition::from_vectors(cond.iter().take(k).cloned().collect::<Vec<_>>())
        .expect("non-empty witness")
}

fn verdict(ok: bool) -> String {
    assert!(ok, "figure 1 verification failed");
    "VERIFIED".to_string()
}
