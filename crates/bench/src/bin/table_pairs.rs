//! Regenerates the **(k, R) pair table** of Section 1.2: with a consensus
//! condition (ℓ = 1) of degree `d`, the algorithm realizes the generic
//! pair `(k, ⌊d/k⌋ + 1)`, interpolating between condition-based consensus
//! (`k = 1`: `d + 1` rounds, \[22\]) and one-shot set agreement
//! (`k = d + 1`: formula 1, clamped to the loop's first decision round 2).
//!
//! Each (d, k) cell is a [`ScenarioSuite`]: several random in-condition
//! inputs × {failure-free, staircase, bound-attaining, random}
//! adversaries, worst-cased over the whole grid.
//!
//! Set `SETAGREE_SUITE_CACHE` and/or `SETAGREE_SUITE_JOURNAL` to
//! persist cells across invocations (warm reruns serve every cell from
//! the cache; a killed sweep resumes from the journal's verified
//! prefix — see [`SuiteStore`]), and `SETAGREE_METRICS=<path|->` to
//! dump the run's metrics snapshot at exit.
//!
//! ```text
//! cargo run -p setagree-bench --bin table_pairs
//! ```

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use setagree_conditions::MaxCondition;
use setagree_core::{ConditionBasedConfig, ProtocolSpec, ScenarioSuite, SuiteCache, SuiteRunStats};
use setagree_sync::FailurePattern;

use setagree_bench::{in_condition_input, MetricsDump, SuiteStore, Table};
use setagree_types::ProcessId;

/// More than t − d initial crashes: every survivor witnesses too many
/// failures in round 1 and must wait for the line-18 round.
fn tmf_forcing(n: usize, t: usize, d: usize) -> FailurePattern {
    let crashes = (t - d + 1).min(t);
    FailurePattern::initial(n, (0..crashes).map(|i| ProcessId::new(n - 1 - i)))
        .expect("valid initial crashes")
}

fn main() {
    let _metrics = MetricsDump::from_env();
    let n = 14;
    let t = 8;
    let mut rng = SmallRng::seed_from_u64(0x9A12);
    let store: Option<SuiteStore<u32>> = SuiteStore::from_env();
    let cache = store.as_ref().map(|s| Arc::clone(s.cache()));
    let mut run_totals = SuiteRunStats::default();
    let mut table = Table::new(vec!["d", "k", "formula ⌊d/k⌋+1", "measured worst", "ok"]);
    let mut all_ok = true;

    for d in [2usize, 4, 6] {
        for k in 1..=(d + 1).min(t) {
            let config = ConditionBasedConfig::builder(n, t, k)
                .condition_degree(d)
                .ell(1)
                .build()
                .expect("ℓ = 1 ≤ min(k, t − d) on this grid");
            let oracle = MaxCondition::new(config.legality());
            let formula = d / k + 1;

            let outcome = with_cache(ScenarioSuite::new(), &cache)
                .spec(ProtocolSpec::condition_based(config, oracle))
                .inputs((0..8).map(|_| in_condition_input(n, config.legality(), &mut rng)))
                .pattern(FailurePattern::none(n))
                .pattern(FailurePattern::staircase(n, t, k))
                // The bound-attaining adversary: more than t − d initial
                // crashes force every survivor onto the too-many-failures
                // path, which decides exactly at round ⌊(d+ℓ−1)/k⌋ + 1
                // (Lemma 2(i) tightness).
                .pattern(tmf_forcing(n, t, d))
                .patterns((0..8u64).map(|seed| {
                    FailurePattern::random(n, t, t / k + 1, &mut SmallRng::seed_from_u64(seed))
                        .into()
                }))
                .run();
            run_totals.cases += outcome.len();
            run_totals.cache_hits += outcome.cache_hits();
            run_totals.cache_misses += outcome.cache_misses();
            assert!(
                outcome.all_satisfy_properties(),
                "properties at d={d}, k={k}"
            );
            let worst = outcome.worst_decision_round().expect("somebody decides");

            // The loop's first decision opportunity is round 2, and the
            // tmf-forcing adversary attains the bound exactly.
            let bound = formula.max(2);
            let ok = worst == bound;
            all_ok &= ok;
            table.row(vec![
                d.to_string(),
                k.to_string(),
                formula.to_string(),
                worst.to_string(),
                if ok { "ok".into() } else { "FAIL".into() },
            ]);
        }
    }

    println!("(k, R) pairs for ℓ = 1 conditions (n = {n}, t = {t}) — Section 1.2");
    println!();
    println!("{table}");
    println!(
        "shape: R divides by k as the paper's generic pair predicts — {}",
        if all_ok { "VERIFIED" } else { "FAILED" }
    );
    assert!(all_ok);
    if let Some(store) = store {
        store.finish(run_totals);
    }
}

fn with_cache(
    suite: ScenarioSuite<u32, MaxCondition>,
    cache: &Option<Arc<SuiteCache<u32>>>,
) -> ScenarioSuite<u32, MaxCondition> {
    match cache {
        Some(cache) => suite.cache(cache),
        None => suite,
    }
}
