//! Regenerates the **synchronous hierarchies** of Section 5:
//!
//! ```text
//! ℓ fixed:  S^0_t[ℓ] ⊂ S^1_t[ℓ] ⊂ … ⊂ S^t_t[ℓ]
//! d fixed:  S^d_t[1] ⊂ S^d_t[2] ⊂ … ⊂ S^d_t[n]
//! ```
//!
//! with, per member: the legality pair (x = t−d, ℓ), whether the trivial
//! all-vectors condition belongs (Theorem 8: ℓ > t−d), the size of its
//! maximal `max_ℓ` condition over a reference system, and the in-condition
//! round bound for a reference `k` — exhibiting the paper's size/speed
//! trade-off (larger families decide slower).
//!
//! ```text
//! cargo run -p setagree-bench --bin table_hierarchy
//! ```

use setagree_conditions::{counting, SdtParams};

use setagree_bench::{MetricsDump, Table};

fn main() {
    let _metrics = MetricsDump::from_env();
    let t = 4;
    let ell = 2;
    let k = 2;
    let n_ref = 8;
    let m_ref = 4u32;

    println!("Hierarchy S^d_{t}[ℓ={ell}] (reference system n = {n_ref}, m = {m_ref}, k = {k})");
    println!();
    let chain = SdtParams::degree_chain(t, ell).expect("valid chain");
    let mut table = Table::new(vec![
        "member",
        "(x, ℓ)",
        "trivial ∈",
        "NB over ref",
        "R in-condition",
    ]);
    let mut last_nb = 0u128;
    let mut last_rounds = 0usize;
    let mut monotone = true;
    for s in &chain {
        let params = s.legality();
        let nb = counting::nb(n_ref, m_ref, params);
        let rounds = (s.degree() + ell - 1) / k + 1;
        monotone &= nb >= last_nb && rounds >= last_rounds;
        last_nb = nb;
        last_rounds = rounds;
        table.row(vec![
            s.to_string(),
            params.to_string(),
            s.contains_trivial_condition().to_string(),
            nb.to_string(),
            format!("⌊(d+ℓ−1)/k⌋+1 = {rounds}"),
        ]);
    }
    println!("{table}");
    println!(
        "trade-off: family size and round bound both grow with d — {}",
        if monotone { "VERIFIED" } else { "FAILED" }
    );
    assert!(monotone);
    println!();

    // Inclusion verdicts along both chains.
    let mut incl = Table::new(vec!["chain", "inclusions strict & ordered"]);
    let deg_ok = chain
        .windows(2)
        .all(|w| w[0].included_in(&w[1]) == Some(true) && w[1].included_in(&w[0]) == Some(false));
    incl.row(vec![
        format!("S^d_{t}[ℓ={ell}], d = 0..{t}"),
        verify(deg_ok),
    ]);
    let ell_chain = SdtParams::ell_chain(t, 1, n_ref).expect("valid chain");
    let ell_ok = ell_chain
        .windows(2)
        .all(|w| w[0].included_in(&w[1]) == Some(true) && w[1].included_in(&w[0]) == Some(false));
    incl.row(vec![format!("S^1_{t}[ℓ], ℓ = 1..{n_ref}"), verify(ell_ok)]);
    println!("{incl}");
    assert!(deg_ok && ell_ok);
}

fn verify(ok: bool) -> String {
    if ok {
        "VERIFIED".into()
    } else {
        "FAILED".into()
    }
}
