//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. **Ordered round-1 sends** (the paper's model) vs the standard
//!    arbitrary-subset model: the very same Figure 2 algorithm violates
//!    consensus under subset loss (containment of views is load-bearing).
//!    Both models run through the same `Scenario` API — the adversary
//!    is data (`Adversary::Ordered` vs `Adversary::Unordered`).
//! 2. **Condition vs no condition**: instantiating the algorithm with the
//!    trivial all-vectors condition (footnote 6) regresses the fast path
//!    to the classical bound.
//! 3. **Plain Figure 2 vs the Section 8 early-deciding combination**:
//!    rounds under few actual crashes.
//!
//! Set `SETAGREE_SUITE_CACHE` and/or `SETAGREE_SUITE_JOURNAL` to
//! persist the suite-driven ablations (1 and 3) across invocations —
//! a warm rerun serves their grids without re-executing a protocol
//! (see [`SuiteStore`]).
//!
//! ```text
//! cargo run -p setagree-bench --bin table_ablation
//! ```

use std::sync::Arc;

use setagree_conditions::{Condition, ExplicitOracle, LegalityParams, MaxCondition, MaxEll};
use setagree_core::{
    ConditionBasedConfig, ProtocolSpec, Scenario, ScenarioSuite, SuiteCache, SuiteCase,
    SuiteRunStats,
};
use setagree_sync::{CrashSpec, FailurePattern, SubsetCrash, UnorderedFailurePattern};
use setagree_types::{InputVector, ProcessId, ProcessSet};

use setagree_bench::{in_condition_input, out_of_condition_input, MetricsDump, SuiteStore, Table};

fn with_cache<O: std::hash::Hash>(
    suite: ScenarioSuite<u32, O>,
    cache: &Option<Arc<SuiteCache<u32>>>,
) -> ScenarioSuite<u32, O> {
    match cache {
        Some(cache) => suite.cache(cache),
        None => suite,
    }
}

fn main() {
    let _metrics = MetricsDump::from_env();
    let store: Option<SuiteStore<u32>> = SuiteStore::from_env();
    let cache = store.as_ref().map(|s| Arc::clone(s.cache()));
    let mut run_totals = SuiteRunStats::default();
    ordered_sends_ablation(&cache, &mut run_totals);
    println!();
    condition_ablation();
    println!();
    early_combination_ablation(&cache, &mut run_totals);
    if let Some(store) = store {
        store.finish(run_totals);
    }
}

/// Folds one suite outcome into the run's store totals.
fn tally(totals: &mut SuiteRunStats, outcome: &setagree_core::SuiteReport<u32>) {
    totals.cases += outcome.len();
    totals.cache_hits += outcome.cache_hits();
    totals.cache_misses += outcome.cache_misses();
}

/// Ablation 1: ordered vs arbitrary-subset sends — same algorithm, same
/// condition, same crash count; only the adversary model changes.
fn ordered_sends_ablation(cache: &Option<Arc<SuiteCache<u32>>>, totals: &mut SuiteRunStats) {
    let config = ConditionBasedConfig::builder(4, 2, 1)
        .condition_degree(1)
        .ell(1)
        .build()
        .expect("valid");
    let i6 = InputVector::new(vec![6u32, 6, 3, 3]);
    let i5 = InputVector::new(vec![5u32, 5, 3, 3]);
    let cond = Condition::from_vectors(vec![i6, i5]).expect("uniform");
    let params = LegalityParams::new(1, 1).expect("valid");
    let oracle = ExplicitOracle::new(cond, MaxEll::new(1), params);
    let input = InputVector::new(vec![6u32, 5, 3, 3]);
    let scenario = Scenario::condition_based(config, oracle.clone()).input(input.clone());

    // Ordered model, worst case over all prefix pairs — one suite over
    // the 25-pattern grid.
    let outcome = with_cache(ScenarioSuite::new(), cache)
        .spec(ProtocolSpec::condition_based(config, oracle))
        .input(input)
        .patterns((0..=4).flat_map(|p1| {
            (0..=4).map(move |p2| {
                let mut pattern = FailurePattern::none(4);
                pattern
                    .crash(ProcessId::new(0), CrashSpec::new(1, p1))
                    .unwrap();
                pattern
                    .crash(ProcessId::new(1), CrashSpec::new(1, p2))
                    .unwrap();
                pattern.into()
            })
        }))
        .run();
    tally(totals, &outcome);
    assert_eq!(outcome.failures().count(), 0, "every prefix pair must run");
    let ordered_worst = outcome
        .reports()
        .map(|r| r.decided_values().len())
        .max()
        .expect("25 prefix pairs ran");

    // Standard model: split deliveries — the same scenario, an unordered
    // adversary.
    let mut only_p3 = ProcessSet::empty(4);
    only_p3.insert(ProcessId::new(2));
    let mut only_p4 = ProcessSet::empty(4);
    only_p4.insert(ProcessId::new(3));
    let mut pattern = UnorderedFailurePattern::none(4);
    pattern
        .crash(ProcessId::new(0), SubsetCrash::new(1, only_p3))
        .unwrap();
    pattern
        .crash(ProcessId::new(1), SubsetCrash::new(1, only_p4))
        .unwrap();
    let unordered = scenario.pattern(pattern).run().expect("runs");

    println!("Ablation 1 — send discipline (n=4, t=2, k=1, same algorithm & condition)");
    println!();
    let mut t = Table::new(vec!["model", "worst |decided|", "consensus (k=1)"]);
    t.row(vec![
        "ordered prefix (paper)".into(),
        ordered_worst.to_string(),
        if ordered_worst <= 1 {
            "holds".into()
        } else {
            "VIOLATED".to_string()
        },
    ]);
    t.row(vec![
        "arbitrary subset (standard)".into(),
        unordered.decided_values().len().to_string(),
        if unordered.satisfies_agreement() {
            "holds".into()
        } else {
            "VIOLATED".into()
        },
    ]);
    println!("{t}");
    assert_eq!(ordered_worst, 1);
    assert_eq!(unordered.decided_values().len(), 2);
    println!("the ordered-send assumption is load-bearing — VERIFIED");
}

/// Ablation 2: real condition vs the trivial all-vectors condition.
fn condition_ablation() {
    let mut rng = rand::rngs::mock::StepRng::new(7, 13);
    let real = ConditionBasedConfig::builder(10, 6, 2)
        .condition_degree(4)
        .ell(1)
        .build()
        .expect("valid");
    let trivial = ConditionBasedConfig::builder(10, 6, 2)
        .condition_degree(6)
        .ell(2)
        .permit_trivial_condition()
        .build()
        .expect("valid");
    let input = in_condition_input(10, real.legality(), &mut rng);
    let pattern = FailurePattern::none(10);

    let with_cond = Scenario::condition_based(real, MaxCondition::new(real.legality()))
        .input(input.clone())
        .pattern(pattern.clone())
        .run()
        .expect("runs");
    let with_trivial = Scenario::condition_based(trivial, MaxCondition::new(trivial.legality()))
        .input(input)
        .pattern(pattern)
        .run()
        .expect("runs");

    println!("Ablation 2 — condition vs trivial condition (n=10, t=6, k=2, input ∈ C)");
    println!();
    let mut t = Table::new(vec!["instantiation", "rounds", "note"]);
    t.row(vec![
        format!("C_max{} (d=4)", real.legality()),
        with_cond.decision_round().unwrap().to_string(),
        "condition fast path".into(),
    ]);
    t.row(vec![
        "C_all (d=6, footnote 6)".into(),
        with_trivial.decision_round().unwrap().to_string(),
        "everything 'matches': 2-round path trivially fires".into(),
    ]);
    println!("{t}");
    assert!(with_cond.satisfies_all() && with_trivial.satisfies_all());
    println!(
        "note: with C_all every input is 'in condition', so agreement rests on ℓ ≤ k alone; \
         the out-of-condition fallback below shows the real cost."
    );

    // The real difference shows under crashes: with C_all, any missing
    // entry exceeds t − d = 0, so the fast condition path is unreachable
    // and runs fall back to the classical bound — while a genuine
    // condition still fast-paths its members.
    let staircase = FailurePattern::staircase(10, 6, 2);
    let inside2 = in_condition_input(10, real.legality(), &mut rng);
    let with_cond = Scenario::condition_based(real, MaxCondition::new(real.legality()))
        .input(inside2.clone())
        .pattern(staircase.clone())
        .run()
        .expect("runs");
    let with_trivial = Scenario::condition_based(trivial, MaxCondition::new(trivial.legality()))
        .input(inside2)
        .pattern(staircase)
        .run()
        .expect("runs");
    assert!(with_cond.satisfies_all() && with_trivial.satisfies_all());
    let mut t = Table::new(vec!["instantiation", "rounds (staircase crashes)"]);
    t.row(vec![
        "C_max (d=4)".into(),
        with_cond.decision_round().unwrap().to_string(),
    ]);
    t.row(vec![
        "C_all (d=6)".into(),
        with_trivial.decision_round().unwrap().to_string(),
    ]);
    println!("{t}");
    assert!(
        with_cond.decision_round().unwrap() <= with_trivial.decision_round().unwrap(),
        "a genuine condition must not be slower than C_all under crashes"
    );
}

/// Ablation 3: plain Figure 2 vs the Section 8 early-deciding
/// combination — one suite grid, {Figure 2, + early} × {f = 0, 2, 4}.
fn early_combination_ablation(cache: &Option<Arc<SuiteCache<u32>>>, totals: &mut SuiteRunStats) {
    let config = ConditionBasedConfig::builder(12, 6, 2)
        .condition_degree(4)
        .ell(1)
        .build()
        .expect("valid");
    let oracle = MaxCondition::new(config.legality());
    let outside = out_of_condition_input(12, config.legality());
    let crash_counts = [0usize, 2, 4];

    let outcome = with_cache(ScenarioSuite::new(), cache)
        .spec(ProtocolSpec::condition_based(config, oracle))
        .spec(ProtocolSpec::early_condition_based(config, oracle))
        .input(outside)
        .patterns(crash_counts.iter().map(|&f| {
            FailurePattern::initial(12, (0..f).map(|i| ProcessId::new(11 - i)))
                .expect("valid")
                .into()
        }))
        .run();
    tally(totals, &outcome);

    println!("Ablation 3 — Figure 2 vs + early decision (n=12, t=6, k=2, input ∉ C)");
    println!();
    let mut t = Table::new(vec!["f", "Figure 2", "+ early decision", "adaptive bound"]);
    for (pattern_index, f) in crash_counts.into_iter().enumerate() {
        let plain = outcome
            .find(0, 0, Some(pattern_index), None)
            .and_then(SuiteCase::report)
            .expect("runs");
        let early = outcome
            .find(1, 0, Some(pattern_index), None)
            .and_then(SuiteCase::report)
            .expect("runs");
        assert!(plain.satisfies_all() && early.satisfies_all());
        assert!(early.within_predicted_rounds());
        t.row(vec![
            f.to_string(),
            plain.decision_round().unwrap().to_string(),
            early.decision_round().unwrap().to_string(),
            early
                .predicted_rounds()
                .expect("round-based run")
                .to_string(),
        ]);
    }
    println!("{t}");
    println!("the Section 8 combination keeps all Figure 2 bounds and adds ⌊f/k⌋+2 — VERIFIED");
}
