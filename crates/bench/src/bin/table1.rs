//! Regenerates **Table 1**: the paper's example of a (1, 1)-legal
//! condition over four processes, and the Theorem 14 claim that it is not
//! (2, 2)-legal.
//!
//! ```text
//! cargo run -p setagree-bench --bin table1
//! ```

use setagree_conditions::{legality, witness, LegalityParams};

use setagree_bench::{MetricsDump, Table};

fn main() {
    let _metrics = MetricsDump::from_env();
    let (cond, h) = witness::table_1();
    let p11 = LegalityParams::new(1, 1).unwrap();
    let p22 = LegalityParams::new(2, 2).unwrap();

    println!("Table 1 — a (1,1)-legal condition C (paper, Section B / Theorem 14)");
    println!();
    let mut t = Table::new(vec!["input vector", "h_1(I)"]);
    for (vector, decoded) in h.iter() {
        let cells: Vec<String> = vec![
            format!(
                "({})",
                vector
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            format!(
                "{{{}}}",
                decoded
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ];
        t.row(cells);
    }
    println!("{t}");

    let legal_11 = legality::check(&cond, &h, p11).is_ok();
    println!(
        "(1,1)-legality with the printed h: {}",
        if legal_11 { "VERIFIED" } else { "FAILED" }
    );

    let rediscovered = witness::find_recognizing(&cond, p11).is_some();
    println!("(1,1)-recognizing function rediscovered by exhaustive search: {rediscovered}");

    let legal_22 = witness::find_recognizing(&cond, p22);
    println!(
        "(2,2)-legality (Theorem 14 says NO): {}",
        if legal_22.is_none() {
            "no recognizing function exists — VERIFIED"
        } else {
            "FAILED"
        }
    );
    assert!(legal_11 && rediscovered && legal_22.is_none());
}
