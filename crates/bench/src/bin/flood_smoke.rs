//! Runs one large-`n` view-flood scenario to a checked verdict and
//! prints the wall-clock time — the large-`n` smoke test of the dense
//! state engine, and the measurement tool behind the README's
//! before/after broadcast table.
//!
//! Every process starts knowing only its own proposal, floods its view
//! for a fixed round budget, and decides the number of distinct
//! proposals it observed. The verdict checks that every process decided,
//! at the budget round exactly, on the true distinct count — so a merge
//! or counting bug at scale fails the binary, not just slows it down.
//!
//! ```text
//! cargo run --release -p setagree-bench --bin flood_smoke -- \
//!     [--n N] [--engine dense|generic] [--rounds R] [--repeat K]
//! ```
//!
//! Defaults: `--n 256 --engine dense --rounds 3 --repeat 1`. With
//! `--repeat K` the scenario runs `K` times and the fastest run is
//! reported (the measurement mode). The `generic` engine is the
//! pre-dense `View<u32>` flood, kept for the before column.

use std::process::exit;
use std::time::Instant;

use setagree_core::DenseFlood;
use setagree_sync::{run_protocol, FailurePattern, Step, SyncProtocol, Trace};
use setagree_types::{InputVector, ProcessId, ValueTable, View};

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Dense,
    Generic,
}

struct Args {
    n: usize,
    engine: Engine,
    rounds: usize,
    repeat: usize,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        n: 256,
        engine: Engine::Dense,
        rounds: 3,
        repeat: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let (key, value) = match arg.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => match args.next() {
                Some(v) => (arg, v),
                None => usage(&format!("`{arg}` needs a value")),
            },
        };
        match key.as_str() {
            "--n" => parsed.n = parse_positive(&key, &value),
            "--rounds" => parsed.rounds = parse_positive(&key, &value),
            "--repeat" => parsed.repeat = parse_positive(&key, &value),
            "--engine" => {
                parsed.engine = match value.as_str() {
                    "dense" => Engine::Dense,
                    "generic" => Engine::Generic,
                    other => usage(&format!("unknown engine `{other}`")),
                }
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    parsed
}

fn parse_positive(key: &str, value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(v) if v > 0 => v,
        _ => usage(&format!("{key} needs a positive integer, got `{value}`")),
    }
}

fn usage(problem: &str) -> ! {
    eprintln!(
        "{problem}\nusage: flood_smoke [--n N] [--engine dense|generic] \
         [--rounds R] [--repeat K]"
    );
    exit(2)
}

/// Process `i` proposes `i / 2 + 1`: half the proposals are duplicated,
/// so the expected verdict `⌈n/2⌉` exercises the distinct counting, not
/// just the merging.
fn proposals(n: usize) -> Vec<u32> {
    (0..n).map(|i| i as u32 / 2 + 1).collect()
}

/// The pre-dense flood: `View<u32>` snapshots with overwrite-merge.
#[derive(Debug)]
struct GenericFlood {
    rounds: usize,
    view: View<u32>,
}

impl GenericFlood {
    fn system(values: &[u32], rounds: usize) -> Vec<GenericFlood> {
        (0..values.len())
            .map(|i| {
                let mut view = View::all_bottom(values.len());
                view.set(ProcessId::new(i), values[i]);
                GenericFlood { rounds, view }
            })
            .collect()
    }
}

impl SyncProtocol for GenericFlood {
    type Msg = View<u32>;
    type Output = usize;

    fn message(&mut self, _round: usize) -> View<u32> {
        self.view.clone()
    }

    fn receive(&mut self, _round: usize, _from: ProcessId, msg: &View<u32>) {
        self.view.merge_from(msg);
    }

    fn compute(&mut self, round: usize) -> Step<usize> {
        if round >= self.rounds {
            Step::Decide(self.view.distinct_count())
        } else {
            Step::Continue
        }
    }
}

/// Checks the flood's verdict: everyone decided the true distinct count,
/// at the budget round exactly.
fn check(trace: &Trace<usize>, n: usize, rounds: usize) -> Result<(), String> {
    let expected = n.div_ceil(2);
    if !trace.all_correct_decided() {
        return Err("not every process decided".into());
    }
    let decided = trace.decided_values();
    if decided != [expected].into_iter().collect() {
        return Err(format!("decided {decided:?}, expected {{{expected}}}"));
    }
    if trace.last_decision_round() != Some(rounds) {
        return Err(format!(
            "decided at {:?}, expected round {rounds}",
            trace.last_decision_round()
        ));
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    let values = proposals(args.n);
    let pattern = FailurePattern::none(args.n);
    let limit = args.rounds + 1;

    let vector = InputVector::new(values.clone());
    let table = ValueTable::from_vector(&vector);
    let inputs = table.intern_vector(&vector);

    let mut best = None;
    for _ in 0..args.repeat {
        let start = Instant::now();
        let trace = match args.engine {
            Engine::Dense => {
                run_protocol(DenseFlood::system(&inputs, args.rounds), &pattern, limit)
            }
            Engine::Generic => {
                run_protocol(GenericFlood::system(&values, args.rounds), &pattern, limit)
            }
        };
        let elapsed = start.elapsed();
        let trace = match trace {
            Ok(trace) => trace,
            Err(e) => {
                eprintln!("flood_smoke: execution failed: {e}");
                exit(1);
            }
        };
        if let Err(problem) = check(&trace, args.n, args.rounds) {
            eprintln!("flood_smoke: verdict failed at n = {}: {problem}", args.n);
            exit(1);
        }
        best = Some(best.map_or(elapsed, |b: std::time::Duration| b.min(elapsed)));
    }

    let engine = match args.engine {
        Engine::Dense => "dense",
        Engine::Generic => "generic",
    };
    let micros = best.expect("repeat >= 1").as_micros();
    println!(
        "flood_smoke: engine = {engine}, n = {}, rounds = {}, verdict ok, best of {}: {micros} us",
        args.n, args.rounds, args.repeat
    );
}
