//! Regenerates the paper's **round-complexity claims** (Section 6.1,
//! Lemmas 1–2, Theorem 10): measured decision rounds of the Figure 2
//! algorithm across scenarios, against the closed-form predictions, with
//! the flood-set baseline alongside.
//!
//! Each configuration expands to a [`ScenarioSuite`] grid —
//! {Figure 2, flood-set} × {in-condition, out-of-condition} × {failure
//! free, ≤ t−d crashes, staircase, > t−d initial crashes} — and every
//! case is checked against the bound the paper's case analysis predicts
//! for it. Rows **stream**: each prints the moment its cell finishes
//! (in deterministic grid order), rather than after the whole grid —
//! the suite's `run_streaming` interface. In-condition inputs come from
//! a seeded [`Workload`] spec, so the sweep replays identically from
//! this file alone.
//!
//! Set `SETAGREE_SUITE_CACHE` and/or `SETAGREE_SUITE_JOURNAL` to
//! persist cells across invocations — a warm rerun streams the same
//! rows without re-executing a protocol, and a killed sweep resumes
//! from the journal's verified prefix (see [`SuiteStore`]).
//!
//! Pass `--faults <seed>:<rate>` (rate in parts per 10,000 per link per
//! round) to turn every crash pattern into an omission adversary
//! (`Adversary::Omission`) layering a seeded link-drop `FaultPlan` under
//! the same crashes. Under injected omissions the paper's round bounds
//! and the ≤ k agreement of the crash model are no longer guaranteed —
//! the sweep then verifies the robustness contract instead: every run
//! terminates with an honest Report whose decided values are genuine
//! proposals (validity), with agreement reported as data. Omission
//! cells key the cache on the plan, so they share the cached / sharded
//! / journaled pipeline with the crash-only cells without colliding.
//!
//! ```text
//! cargo run -p setagree-bench --bin table_rounds
//! cargo run -p setagree-bench --bin table_rounds -- --faults 7:1500
//! ```

use std::process::exit;
use std::sync::Arc;

use setagree_conditions::MaxCondition;
use setagree_core::{
    Adversary, ConditionBasedConfig, Executor, FaultPlan, ProtocolSpec, ScenarioSuite, SuiteCache,
    SuiteRunStats,
};
use setagree_sync::{CrashSpec, FailurePattern};
use setagree_types::ProcessId;

use setagree_bench::{take_faults_flag, MetricsDump, StreamingTable, SuiteStore, Workload};

fn main() {
    let _metrics = MetricsDump::from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let faults = match take_faults_flag(&mut args) {
        Ok(faults) => faults,
        Err(problem) => usage(&problem),
    };
    if let Some(arg) = args.first() {
        usage(&format!("unknown argument `{arg}`"));
    }
    let store: Option<SuiteStore<u32>> = SuiteStore::from_env();
    let cache = store.as_ref().map(|s| Arc::clone(s.cache()));
    let mut run_totals = SuiteRunStats::default();
    let table = StreamingTable::new(
        vec![
            "n", "t", "k", "d", "ℓ", "protocol", "input", "pattern", "rounds", "bound", "k-agree",
            "ok",
        ],
        4,
    );
    let mut all_ok = true;

    let grid: &[(usize, usize, usize, usize, usize)] = &[
        // (n, t, k, d, ℓ) with ℓ ≤ k and ℓ ≤ t − d.
        (8, 4, 2, 2, 1),
        (8, 4, 2, 2, 2),
        (10, 6, 2, 4, 1),
        (10, 6, 3, 4, 2),
        (12, 8, 2, 4, 2),
        (12, 8, 4, 6, 2),
        (16, 9, 3, 6, 3),
    ];

    let protocol_names = ["figure-2", "floodset"];
    let input_names = ["in", "out"];
    let pattern_names = ["none", "few", "stair", "initial"];

    println!("Round complexity of condition-based k-set agreement (Figure 2) vs baseline");
    println!(
        "(rows stream as grid cells finish; executor: {})",
        Executor::Simulator.label()
    );
    if let Some((seed, rate)) = faults {
        println!(
            "(omission mode: seeded link drops, seed {seed}, rate {rate}/10000 — \
             checking termination + validity; rounds and k-agree are data)"
        );
    }
    println!();
    table.header();

    for (row, &(n, t, k, d, ell)) in grid.iter().enumerate() {
        let config = ConditionBasedConfig::builder(n, t, k)
            .condition_degree(d)
            .ell(ell)
            .build()
            .expect("grid rows are valid");
        let oracle = MaxCondition::new(config.legality());
        let t_minus_d = t - d;
        let in_condition = Workload::InCondition {
            n,
            params: config.legality(),
            seed: 0xB0A2 ^ row as u64,
            count: 1,
        };

        // With --faults, every crash pattern carries the same seeded
        // link-drop plan underneath — the omission adversary.
        let adversary = |crashes: FailurePattern| -> Adversary {
            match faults {
                Some((seed, rate)) => Adversary::Omission {
                    plan: FaultPlan::uniform_drop(n, seed, rate),
                    crashes,
                },
                None => Adversary::from(crashes),
            }
        };

        let run = with_cache(ScenarioSuite::new(), &cache)
            .spec(ProtocolSpec::condition_based(config, oracle))
            .spec(ProtocolSpec::flood_set(n, t, k))
            .inputs(in_condition.inputs())
            .inputs(
                Workload::OutOfCondition {
                    n,
                    params: config.legality(),
                }
                .inputs(),
            )
            .pattern(adversary(FailurePattern::none(n)))
            .pattern(adversary(few_crashes(n, t_minus_d)))
            .pattern(adversary(FailurePattern::staircase(n, t, k)))
            .pattern(adversary(initial_crashes(n, t_minus_d + 1)))
            .run_streaming(|case| {
                let report = case.result.as_ref().expect("grid cases are valid");
                let ok = if faults.is_some() {
                    // Omission faults void the crash-model bounds; the
                    // robustness contract is a principled, honest run.
                    report.satisfies_termination() && report.satisfies_validity()
                } else {
                    report.satisfies_all() && report.within_predicted_rounds()
                };
                all_ok &= ok;
                table.row(vec![
                    n.to_string(),
                    t.to_string(),
                    k.to_string(),
                    if case.spec_index == 0 {
                        d.to_string()
                    } else {
                        "-".into()
                    },
                    if case.spec_index == 0 {
                        ell.to_string()
                    } else {
                        "-".into()
                    },
                    protocol_names[case.spec_index].into(),
                    input_names[case.input_index].into(),
                    pattern_names[case.pattern_index.expect("patterns set")].into(),
                    report.decision_round().unwrap_or(0).to_string(),
                    format!("≤ {}", report.predicted_rounds().expect("round-based run")),
                    report.decided_values().len().to_string(),
                    verdict(ok),
                ]);
            });
        run_totals.cases += run.cases;
        run_totals.cache_hits += run.cache_hits;
        run_totals.cache_misses += run.cache_misses;
    }

    println!();
    if faults.is_some() {
        println!(
            "robustness shape: every omission run terminates with an honest, valid \
             Report — {}",
            if all_ok { "VERIFIED" } else { "FAILED" }
        );
    } else {
        println!(
            "paper shape: in-condition runs beat the ⌊t/k⌋+1 baseline; bounds of \
             Lemmas 1–2 hold — {}",
            if all_ok { "VERIFIED" } else { "FAILED" }
        );
    }
    assert!(all_ok);
    if let Some(store) = store {
        store.finish(run_totals);
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("{problem}\nusage: table_rounds [--faults seed:rate]");
    exit(2)
}

fn with_cache(
    suite: ScenarioSuite<u32, MaxCondition>,
    cache: &Option<Arc<SuiteCache<u32>>>,
) -> ScenarioSuite<u32, MaxCondition> {
    match cache {
        Some(cache) => suite.cache(cache),
        None => suite,
    }
}

/// Exactly `count` round-1 crashes with assorted send prefixes.
fn few_crashes(n: usize, count: usize) -> FailurePattern {
    let mut pattern = FailurePattern::none(n);
    for i in 0..count {
        let victim = ProcessId::new(n - 1 - i);
        pattern
            .crash(victim, CrashSpec::new(1, (i * n) / (count.max(1) + 1)))
            .expect("valid spec");
    }
    pattern
}

/// `count` initial crashes (never take a step).
fn initial_crashes(n: usize, count: usize) -> FailurePattern {
    FailurePattern::initial(n, (0..count).map(|i| ProcessId::new(n - 1 - i)))
        .expect("valid initial crashes")
}

fn verdict(ok: bool) -> String {
    if ok {
        "ok".into()
    } else {
        "FAIL".into()
    }
}
