//! Regenerates the paper's **round-complexity claims** (Section 6.1,
//! Lemmas 1–2, Theorem 10): measured decision rounds of the Figure 2
//! algorithm across scenarios, against the closed-form predictions, with
//! the flood-set baseline alongside.
//!
//! Scenarios per configuration:
//!
//! * `in/none`      — input ∈ C, failure-free             → 2 rounds;
//! * `in/few`       — input ∈ C, ≤ t−d round-1 crashes    → 2 rounds;
//! * `in/stair`     — input ∈ C, staircase crashes        → ≤ ⌊(d+ℓ−1)/k⌋+1;
//! * `out/none`     — input ∉ C, failure-free             → ≤ ⌊t/k⌋+1;
//! * `out/initial`  — input ∉ C, > t−d initial crashes    → ≤ ⌊(d+ℓ−1)/k⌋+1;
//! * `floodset`     — unconditioned baseline              → ⌊t/k⌋+1.
//!
//! ```text
//! cargo run -p setagree-bench --bin table_rounds
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;

use setagree_conditions::MaxCondition;
use setagree_core::{run_condition_based, run_floodset, ConditionBasedConfig};
use setagree_sync::{CrashSpec, FailurePattern};
use setagree_types::ProcessId;

use setagree_bench::{in_condition_input, out_of_condition_input, Table};

fn main() {
    let mut rng = SmallRng::seed_from_u64(0xB0A2);
    let mut table = Table::new(vec![
        "n", "t", "k", "d", "ℓ", "scenario", "rounds", "bound", "k-agree", "ok",
    ]);
    let mut all_ok = true;

    let grid: &[(usize, usize, usize, usize, usize)] = &[
        // (n, t, k, d, ℓ) with ℓ ≤ k and ℓ ≤ t − d.
        (8, 4, 2, 2, 1),
        (8, 4, 2, 2, 2),
        (10, 6, 2, 4, 1),
        (10, 6, 3, 4, 2),
        (12, 8, 2, 4, 2),
        (12, 8, 4, 6, 2),
        (16, 9, 3, 6, 3),
    ];

    for &(n, t, k, d, ell) in grid {
        let config = ConditionBasedConfig::builder(n, t, k)
            .condition_degree(d)
            .ell(ell)
            .build()
            .expect("grid rows are valid");
        let oracle = MaxCondition::new(config.legality());
        let t_minus_d = t - d;

        let inside = in_condition_input(n, config.legality(), &mut rng);
        let outside = out_of_condition_input(n, config.legality());

        // Scenario: in-condition, failure-free.
        let scenarios: Vec<(&str, _, FailurePattern)> = vec![
            ("in/none", &inside, FailurePattern::none(n)),
            ("in/few", &inside, few_crashes(n, t_minus_d)),
            ("in/stair", &inside, FailurePattern::staircase(n, t, k)),
            ("out/none", &outside, FailurePattern::none(n)),
            ("out/initial", &outside, initial_crashes(n, t_minus_d + 1)),
        ];
        for (name, input, pattern) in scenarios {
            let report = run_condition_based(&config, &oracle, input, &pattern)
                .expect("run succeeds");
            let rounds = report.decision_round().unwrap_or(0);
            let ok = report.satisfies_all() && report.within_predicted_rounds();
            all_ok &= ok;
            table.row(vec![
                n.to_string(),
                t.to_string(),
                k.to_string(),
                d.to_string(),
                ell.to_string(),
                name.to_string(),
                rounds.to_string(),
                format!("≤ {}", report.predicted_rounds()),
                report.decided_values().len().to_string(),
                verdict(ok),
            ]);
        }

        // Baseline: flood-set at ⌊t/k⌋ + 1.
        let base = run_floodset(n, t, k, &outside, &FailurePattern::none(n)).expect("baseline");
        let ok = base.satisfies_all() && base.within_predicted_rounds();
        all_ok &= ok;
        table.row(vec![
            n.to_string(),
            t.to_string(),
            k.to_string(),
            "-".into(),
            "-".into(),
            "floodset".into(),
            base.decision_round().unwrap_or(0).to_string(),
            format!("= {}", base.predicted_rounds()),
            base.decided_values().len().to_string(),
            verdict(ok),
        ]);
    }

    println!("Round complexity of condition-based k-set agreement (Figure 2) vs baseline");
    println!();
    println!("{table}");
    println!(
        "paper shape: in-condition runs beat the ⌊t/k⌋+1 baseline; bounds of \
         Lemmas 1–2 hold — {}",
        if all_ok { "VERIFIED" } else { "FAILED" }
    );
    assert!(all_ok);
}

/// Exactly `count` round-1 crashes with assorted send prefixes.
fn few_crashes(n: usize, count: usize) -> FailurePattern {
    let mut pattern = FailurePattern::none(n);
    for i in 0..count {
        let victim = ProcessId::new(n - 1 - i);
        pattern
            .crash(victim, CrashSpec::new(1, (i * n) / (count.max(1) + 1)))
            .expect("valid spec");
    }
    pattern
}

/// `count` initial crashes (never take a step).
fn initial_crashes(n: usize, count: usize) -> FailurePattern {
    FailurePattern::initial(n, (0..count).map(|i| ProcessId::new(n - 1 - i)))
        .expect("valid initial crashes")
}

fn verdict(ok: bool) -> String {
    if ok { "ok".into() } else { "FAIL".into() }
}
