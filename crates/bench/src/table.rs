//! Minimal aligned-column table printers for the experiment binaries:
//! the buffered [`Table`] (widths computed from the whole table at
//! display time) and the incremental [`StreamingTable`] (fixed widths,
//! each row printed the moment it arrives — the printer for suites
//! consumed via `run_streaming`).

use std::fmt;
use std::io::Write;

/// An aligned plain-text table.
///
/// # Example
///
/// ```
/// use setagree_bench::Table;
///
/// let mut t = Table::new(vec!["k", "rounds"]);
/// t.row(vec!["1".into(), "5".into()]);
/// t.row(vec!["2".into(), "3".into()]);
/// let out = t.to_string();
/// assert!(out.contains("rounds"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// An aligned table that prints each row immediately — rows appear as
/// suite cells finish instead of after the whole grid. Column widths
/// are fixed up front (header width plus `pad`), so the output stays
/// aligned without buffering; a cell wider than its column degrades to
/// one extra space, never truncation.
///
/// # Example
///
/// ```no_run
/// use setagree_bench::StreamingTable;
///
/// let table = StreamingTable::new(vec!["k", "rounds"], 4);
/// table.header(); // prints the header + rule now
/// table.row(vec!["1".into(), "5".into()]); // prints immediately
/// ```
#[derive(Debug, Clone)]
pub struct StreamingTable {
    headers: Vec<String>,
    widths: Vec<usize>,
}

impl StreamingTable {
    /// A streaming table whose column widths are the header widths plus
    /// `pad` extra characters of room for the data.
    pub fn new(headers: Vec<&str>, pad: usize) -> Self {
        let widths = headers.iter().map(|h| h.chars().count() + pad).collect();
        StreamingTable {
            headers: headers.into_iter().map(String::from).collect(),
            widths,
        }
    }

    fn print_cells(&self, cells: &[String]) {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let width = self.widths[i];
            line.push_str(cell);
            for _ in cell.chars().count()..width {
                line.push(' ');
            }
        }
        println!("{}", line.trim_end());
        // Rows must reach the terminal before the next cell computes.
        let _ = std::io::stdout().flush();
    }

    /// Prints the header and rule.
    pub fn header(&self) {
        self.print_cells(&self.headers);
        let total: usize = self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1);
        println!("{}", "-".repeat(total));
    }

    /// Prints one row immediately.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row(&self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.print_cells(&cells);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "n"]);
        t.row(vec!["floodset".into(), "8".into()]);
        t.row(vec!["cb".into(), "16".into()]);
        let s = t.to_string();
        assert!(s.starts_with("name"));
        assert!(s.contains("floodset"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(vec!["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn streaming_table_prints_rows_without_buffering() {
        let t = StreamingTable::new(vec!["name", "n"], 6);
        t.header();
        t.row(vec!["floodset".into(), "8".into()]);
        t.row(vec!["a-cell-wider-than-its-column".into(), "16".into()]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn streaming_arity_mismatch_panics() {
        StreamingTable::new(vec!["a"], 2).row(vec!["1".into(), "2".into()]);
    }
}
