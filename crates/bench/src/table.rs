//! A minimal aligned-column table printer for the experiment binaries.

use std::fmt;

/// An aligned plain-text table.
///
/// # Example
///
/// ```
/// use setagree_bench::Table;
///
/// let mut t = Table::new(vec!["k", "rounds"]);
/// t.row(vec!["1".into(), "5".into()]);
/// t.row(vec!["2".into(), "3".into()]);
/// let out = t.to_string();
/// assert!(out.contains("rounds"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "n"]);
        t.row(vec!["floodset".into(), "8".into()]);
        t.row(vec!["cb".into(), "16".into()]);
        let s = t.to_string();
        assert!(s.starts_with("name"));
        assert!(s.contains("floodset"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(vec!["a"]).row(vec!["1".into(), "2".into()]);
    }
}
