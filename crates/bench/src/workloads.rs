//! Input-vector workload generators for the experiments.

use rand::Rng;

use setagree_conditions::{LegalityParams, MaxCondition};
use setagree_types::InputVector;

/// A vector guaranteed to be **inside** `C_max(x, ℓ)`: ℓ "heavy" values
/// occupy `x + 1` entries between them (the paper's density), the rest are
/// random strictly-smaller values.
///
/// # Panics
///
/// Panics if `x + 1 > n` (no vector can be dense enough) or `ℓ > x + 1`.
pub fn in_condition_input<R: Rng + ?Sized>(
    n: usize,
    params: LegalityParams,
    rng: &mut R,
) -> InputVector<u32> {
    let x = params.x();
    let ell = params.ell();
    assert!(x < n, "density x + 1 = {} unreachable with n = {n}", x + 1);
    assert!(
        ell <= x + 1,
        "ℓ heavy values need at least ℓ of the x + 1 dense entries"
    );

    // Heavy values live above the noise band [1, 100].
    let heavy: Vec<u32> = (0..ell as u32).map(|i| 1000 + i).collect();
    let mut entries: Vec<u32> = Vec::with_capacity(n);
    // Spread x + 1 dense entries across the heavy values (each ≥ 1).
    for slot in 0..=x {
        entries.push(heavy[slot % ell]);
    }
    while entries.len() < n {
        entries.push(rng.gen_range(1..=100));
    }
    // Shuffle positions so density is not positional.
    for i in (1..entries.len()).rev() {
        let j = rng.gen_range(0..=i);
        entries.swap(i, j);
    }
    let input = InputVector::new(entries);
    debug_assert!(MaxCondition::new(params).contains(&input));
    input
}

/// A vector guaranteed to be **outside** `C_max(x, ℓ)`: all entries
/// distinct, so its top-ℓ values occupy exactly ℓ ≤ x entries.
///
/// # Panics
///
/// Panics if `ℓ > x` — then the condition contains every vector
/// (Theorem 8) and no outside vector exists.
pub fn out_of_condition_input(n: usize, params: LegalityParams) -> InputVector<u32> {
    assert!(
        params.ell() <= params.x(),
        "ℓ > x: C_max{params} contains all input vectors (Theorem 8)"
    );
    let entries: Vec<u32> = (1..=n as u32).collect();
    let input = InputVector::new(entries);
    debug_assert!(!MaxCondition::new(params).contains(&input));
    input
}

/// A maximally-spread vector (all values distinct, descending) used by the
/// baseline measurements where condition membership is irrelevant.
pub fn spread_input(n: usize) -> InputVector<u32> {
    InputVector::new((1..=n as u32).rev().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn in_condition_inputs_are_members() {
        let mut rng = SmallRng::seed_from_u64(1);
        for (x, ell) in [(1usize, 1usize), (3, 1), (3, 2), (5, 3)] {
            let params = LegalityParams::new(x, ell).unwrap();
            for _ in 0..50 {
                let input = in_condition_input(12, params, &mut rng);
                assert!(MaxCondition::new(params).contains(&input), "{params}");
                assert_eq!(input.len(), 12);
            }
        }
    }

    #[test]
    fn out_of_condition_inputs_are_not_members() {
        for (x, ell) in [(1usize, 1usize), (3, 2), (4, 4)] {
            let params = LegalityParams::new(x, ell).unwrap();
            let input = out_of_condition_input(10, params);
            assert!(!MaxCondition::new(params).contains(&input), "{params}");
        }
    }

    #[test]
    #[should_panic(expected = "Theorem 8")]
    fn out_of_condition_impossible_when_ell_exceeds_x() {
        let params = LegalityParams::new(1, 2).unwrap();
        let _ = out_of_condition_input(5, params);
    }

    #[test]
    fn spread_input_is_distinct() {
        let input = spread_input(6);
        assert_eq!(input.distinct_count(), 6);
    }
}
