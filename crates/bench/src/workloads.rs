//! Input-vector workload generators for the experiments.
//!
//! The free functions take an RNG at the call site; the [`Workload`]
//! type wraps them into a seeded, serializable *spec* — inert data that
//! regenerates the identical inputs on every call, so a suite sweep is
//! fully replayable (and cacheable) from one struct instead of from
//! whatever RNG state the call site happened to thread through.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use setagree_conditions::{LegalityParams, MaxCondition};
use setagree_types::InputVector;

/// A vector guaranteed to be **inside** `C_max(x, ℓ)`: ℓ "heavy" values
/// occupy `x + 1` entries between them (the paper's density), the rest are
/// random strictly-smaller values.
///
/// # Panics
///
/// Panics if `x + 1 > n` (no vector can be dense enough) or `ℓ > x + 1`.
pub fn in_condition_input<R: Rng + ?Sized>(
    n: usize,
    params: LegalityParams,
    rng: &mut R,
) -> InputVector<u32> {
    let x = params.x();
    let ell = params.ell();
    assert!(x < n, "density x + 1 = {} unreachable with n = {n}", x + 1);
    assert!(
        ell <= x + 1,
        "ℓ heavy values need at least ℓ of the x + 1 dense entries"
    );

    // Heavy values live above the noise band [1, 100].
    let heavy: Vec<u32> = (0..ell as u32).map(|i| 1000 + i).collect();
    let mut entries: Vec<u32> = Vec::with_capacity(n);
    // Spread x + 1 dense entries across the heavy values (each ≥ 1).
    for slot in 0..=x {
        entries.push(heavy[slot % ell]);
    }
    while entries.len() < n {
        entries.push(rng.gen_range(1..=100));
    }
    // Shuffle positions so density is not positional.
    for i in (1..entries.len()).rev() {
        let j = rng.gen_range(0..=i);
        entries.swap(i, j);
    }
    let input = InputVector::new(entries);
    debug_assert!(MaxCondition::new(params).contains(&input));
    input
}

/// A vector guaranteed to be **outside** `C_max(x, ℓ)`: all entries
/// distinct, so its top-ℓ values occupy exactly ℓ ≤ x entries.
///
/// # Panics
///
/// Panics if `ℓ > x` — then the condition contains every vector
/// (Theorem 8) and no outside vector exists.
pub fn out_of_condition_input(n: usize, params: LegalityParams) -> InputVector<u32> {
    assert!(
        params.ell() <= params.x(),
        "ℓ > x: C_max{params} contains all input vectors (Theorem 8)"
    );
    let entries: Vec<u32> = (1..=n as u32).collect();
    let input = InputVector::new(entries);
    debug_assert!(!MaxCondition::new(params).contains(&input));
    input
}

/// A maximally-spread vector (all values distinct, descending) used by the
/// baseline measurements where condition membership is irrelevant.
pub fn spread_input(n: usize) -> InputVector<u32> {
    InputVector::new((1..=n as u32).rev().collect())
}

/// A seeded, serializable input-generation spec: the data form of the
/// generator functions above ([`in_condition_input`] & friends), per the
/// ROADMAP's "workload generators as data" item.
///
/// A workload owns its randomness — the seed is part of the value — so
/// `workload.inputs()` returns the *same* vectors every time it is
/// called, on every machine: hand them to
/// [`ScenarioSuite::inputs`](setagree_core::ScenarioSuite::inputs) and
/// the sweep (including any attached
/// [`SuiteCache`](setagree_core::SuiteCache) keys) replays from this one
/// struct.
///
/// ```
/// use setagree_bench::Workload;
/// use setagree_conditions::{LegalityParams, MaxCondition};
///
/// let params = LegalityParams::new(2, 1)?;
/// let workload = Workload::InCondition { n: 8, params, seed: 7, count: 3 };
/// let inputs = workload.inputs();
/// assert_eq!(inputs.len(), 3);
/// assert_eq!(inputs, workload.inputs(), "replayable: same seed, same vectors");
/// assert!(inputs.iter().all(|i| MaxCondition::new(params).contains(i)));
/// # Ok::<(), setagree_conditions::ParamsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Workload {
    /// `count` vectors inside `C_max(x, ℓ)`, from [`in_condition_input`]
    /// over a `SmallRng` seeded with `seed`.
    InCondition {
        /// System size.
        n: usize,
        /// The condition's legality parameters.
        params: LegalityParams,
        /// RNG seed; same seed, same vectors.
        seed: u64,
        /// How many vectors to generate.
        count: usize,
    },
    /// The one deterministic vector outside `C_max(x, ℓ)`
    /// ([`out_of_condition_input`]; requires `ℓ ≤ x`).
    OutOfCondition {
        /// System size.
        n: usize,
        /// The condition's legality parameters.
        params: LegalityParams,
    },
    /// The maximally-spread vector ([`spread_input`]).
    Spread {
        /// System size.
        n: usize,
    },
}

impl Workload {
    /// Generates the workload's input vectors — identical on every call.
    ///
    /// # Panics
    ///
    /// As the wrapped generator functions (degenerate `n`/`params`).
    pub fn inputs(&self) -> Vec<InputVector<u32>> {
        match *self {
            Workload::InCondition {
                n,
                params,
                seed,
                count,
            } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                (0..count)
                    .map(|_| in_condition_input(n, params, &mut rng))
                    .collect()
            }
            Workload::OutOfCondition { n, params } => vec![out_of_condition_input(n, params)],
            Workload::Spread { n } => vec![spread_input(n)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn in_condition_inputs_are_members() {
        let mut rng = SmallRng::seed_from_u64(1);
        for (x, ell) in [(1usize, 1usize), (3, 1), (3, 2), (5, 3)] {
            let params = LegalityParams::new(x, ell).unwrap();
            for _ in 0..50 {
                let input = in_condition_input(12, params, &mut rng);
                assert!(MaxCondition::new(params).contains(&input), "{params}");
                assert_eq!(input.len(), 12);
            }
        }
    }

    #[test]
    fn out_of_condition_inputs_are_not_members() {
        for (x, ell) in [(1usize, 1usize), (3, 2), (4, 4)] {
            let params = LegalityParams::new(x, ell).unwrap();
            let input = out_of_condition_input(10, params);
            assert!(!MaxCondition::new(params).contains(&input), "{params}");
        }
    }

    #[test]
    #[should_panic(expected = "Theorem 8")]
    fn out_of_condition_impossible_when_ell_exceeds_x() {
        let params = LegalityParams::new(1, 2).unwrap();
        let _ = out_of_condition_input(5, params);
    }

    #[test]
    fn spread_input_is_distinct() {
        let input = spread_input(6);
        assert_eq!(input.distinct_count(), 6);
    }

    #[test]
    fn workloads_replay_identically_and_match_their_generators() {
        let params = LegalityParams::new(3, 2).unwrap();
        let workload = Workload::InCondition {
            n: 10,
            params,
            seed: 42,
            count: 5,
        };
        let first = workload.inputs();
        assert_eq!(first.len(), 5);
        assert_eq!(first, workload.inputs(), "same seed, same vectors");
        assert!(first.iter().all(|i| MaxCondition::new(params).contains(i)));
        // A different seed is a different (still in-condition) workload.
        let other = Workload::InCondition {
            n: 10,
            params,
            seed: 43,
            count: 5,
        };
        assert_ne!(first, other.inputs());

        let params = LegalityParams::new(2, 1).unwrap();
        assert_eq!(
            Workload::OutOfCondition { n: 6, params }.inputs(),
            vec![out_of_condition_input(6, params)]
        );
        assert_eq!(Workload::Spread { n: 6 }.inputs(), vec![spread_input(6)]);
    }
}
