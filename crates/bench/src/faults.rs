//! Parsing for the `--faults <seed>:<rate>` flag shared by the table
//! binaries.
//!
//! The pair seeds a uniform link-drop [`FaultPlan`]
//! (`FaultPlan::uniform_drop`); `rate` is parts per 10,000 per link per
//! round. The flag turns a binary's crash sweeps into omission sweeps
//! (`Adversary::Omission`), and because the plan participates in the
//! suite cache key, the omission cells join the cached / sharded /
//! journaled pipeline like any other cell.
//!
//! [`FaultPlan`]: setagree_sync::FaultPlan

/// Extracts `--faults seed:rate` (or `--faults=seed:rate`) from `args`,
/// leaving every other argument in place for the caller's own parser.
///
/// # Errors
///
/// A human-readable message when the flag is present but malformed.
pub fn take_faults_flag(args: &mut Vec<String>) -> Result<Option<(u64, u32)>, String> {
    let mut faults = None;
    let mut rest = Vec::new();
    let mut drained = std::mem::take(args).into_iter();
    while let Some(arg) = drained.next() {
        let value = if let Some(v) = arg.strip_prefix("--faults=") {
            v.to_string()
        } else if arg == "--faults" {
            match drained.next() {
                Some(v) => v,
                None => return Err("--faults needs a value (seed:rate)".to_string()),
            }
        } else {
            rest.push(arg);
            continue;
        };
        let parsed = value
            .split_once(':')
            .and_then(|(s, r)| Some((s.trim().parse().ok()?, r.trim().parse().ok()?)));
        match parsed {
            Some(pair) => faults = Some(pair),
            None => {
                return Err(format!(
                    "malformed --faults `{value}` (expected <seed>:<rate>, rate in \
                     parts per 10,000)"
                ))
            }
        }
    }
    *args = rest;
    Ok(faults)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn extracts_the_flag_and_leaves_the_rest() {
        let mut args = strings(&["--shard", "0/2", "--faults", "7:2500"]);
        assert_eq!(take_faults_flag(&mut args), Ok(Some((7, 2500))));
        assert_eq!(args, strings(&["--shard", "0/2"]));

        let mut args = strings(&["--faults=42:100"]);
        assert_eq!(take_faults_flag(&mut args), Ok(Some((42, 100))));
        assert!(args.is_empty());

        let mut args = strings(&["--other"]);
        assert_eq!(take_faults_flag(&mut args), Ok(None));
        assert_eq!(args, strings(&["--other"]));
    }

    #[test]
    fn malformed_values_are_named() {
        assert!(take_faults_flag(&mut strings(&["--faults", "7"])).is_err());
        assert!(take_faults_flag(&mut strings(&["--faults", "a:b"])).is_err());
        assert!(take_faults_flag(&mut strings(&["--faults"])).is_err());
    }
}
