//! The append-only, hash-chained execution journal.
//!
//! A journal is a header followed by records, every field little-endian:
//!
//! ```text
//! ┌──────────────────────────┬────────────────┐
//! │ magic: "setagree-journal"│ version: u32   │   header (20 bytes)
//! └──────────────────────────┴────────────────┘
//! ┌─────────────┬─────────────┬───────────────┐
//! │ len: u32    │ payload     │ hash: 16 B    │   record (20 + len bytes)
//! │ (payload)   │ (len bytes) │ (hi ‖ lo)     │
//! └─────────────┴─────────────┴───────────────┘
//! ```
//!
//! `hash` is [`ChainHash::extend`] of the *previous* record's hash (the
//! [`crate::chain::GENESIS`] link for the first record) over
//! this record's payload — each record commits to everything before it
//! *and* to itself, so corruption of the final record is just as
//! detectable as corruption in the middle.
//!
//! [`JournalWriter`] appends records, flushing each one so a crash loses
//! at most the record being written. [`Cursor`] streams records back
//! without copying them; it stops at the first damage and reports it as
//! a [`JournalTail`] — which record, at which byte offset, truncated or
//! corrupted — while everything before the damage remains usable
//! ([`Cursor::valid_len`] is exactly the prefix worth keeping). Replay
//! of arbitrary bytes never panics and never allocates.

use std::io::{self, Write};

use crate::chain::{ChainHash, GENESIS};

/// The 16-byte file magic opening every journal.
pub const JOURNAL_MAGIC: &[u8; 16] = b"setagree-journal";

/// Header size: magic plus the `u32` version.
pub const HEADER_LEN: usize = JOURNAL_MAGIC.len() + 4;

/// Hard ceiling on one record's payload (16 MiB, matching
/// [`MAX_FRAME_LEN`](crate::frame::MAX_FRAME_LEN)): a larger length
/// prefix marks the journal corrupt instead of requesting an allocation.
pub const MAX_RECORD_LEN: u32 = 1 << 24;

/// The fixed overhead around each payload: length prefix plus hash.
const RECORD_OVERHEAD: usize = 4 + 16;

/// Appends hash-chained records to a byte sink.
///
/// Every append writes the complete record and flushes, so a crashed
/// writer leaves at most one partial record at the tail — exactly the
/// damage [`Cursor`] knows how to step around.
#[derive(Debug)]
pub struct JournalWriter<W: Write> {
    sink: W,
    head: ChainHash,
    records: usize,
}

impl<W: Write> JournalWriter<W> {
    /// Starts a fresh journal: writes the header (with `version`) and
    /// positions the chain at genesis.
    ///
    /// # Errors
    ///
    /// I/O failures writing the header.
    pub fn create(mut sink: W, version: u32) -> io::Result<Self> {
        sink.write_all(JOURNAL_MAGIC)?;
        sink.write_all(&version.to_le_bytes())?;
        sink.flush()?;
        Ok(JournalWriter {
            sink,
            head: GENESIS,
            records: 0,
        })
    }

    /// Continues an existing journal: `sink` must be positioned at the
    /// end of its valid prefix, whose final link and record count a
    /// [`Cursor`] replay produced.
    pub fn resume(sink: W, head: ChainHash, records: usize) -> Self {
        JournalWriter {
            sink,
            head,
            records,
        }
    }

    /// Appends one record and flushes it.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when `payload` exceeds [`MAX_RECORD_LEN`];
    /// otherwise I/O failures from the sink. After an error the journal
    /// file may hold a partial record — the shape replay recovers from.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_RECORD_LEN as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "journal record of {} bytes exceeds the {MAX_RECORD_LEN}-byte cap",
                    payload.len()
                ),
            ));
        }
        let next = self.head.extend(payload);
        let mut record = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(payload);
        record.extend_from_slice(&next.to_le_bytes());
        self.sink.write_all(&record)?;
        self.sink.flush()?;
        self.head = next;
        self.records += 1;
        Ok(())
    }

    /// The chain link after the last appended record.
    pub fn head(&self) -> ChainHash {
        self.head
    }

    /// How many records this writer has accounted for (appends plus the
    /// replayed prefix it resumed from).
    pub fn records(&self) -> usize {
        self.records
    }

    /// Unwraps the sink (e.g. to inspect an in-memory journal).
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// How a journal replay ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalTail {
    /// The final record ended exactly at the end of input: nothing lost.
    Clean,
    /// The input ended mid-record (a crashed writer's partial append, or
    /// a truncated file).
    Truncated {
        /// The index of the record the damage falls in (== the number of
        /// records recovered before it).
        record: usize,
        /// The byte offset where the damaged record starts.
        offset: usize,
    },
    /// A record (or the header) failed verification: bad magic, an
    /// oversized length prefix, or a hash-chain mismatch.
    Corrupted {
        /// The index of the record the damage falls in (== the number of
        /// records recovered before it; 0 for header damage).
        record: usize,
        /// The byte offset where the damaged region starts.
        offset: usize,
        /// What failed.
        reason: &'static str,
    },
}

impl JournalTail {
    /// Whether the replay consumed the whole input.
    pub fn is_clean(self) -> bool {
        self == JournalTail::Clean
    }
}

impl std::fmt::Display for JournalTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalTail::Clean => write!(f, "clean"),
            JournalTail::Truncated { record, offset } => {
                write!(f, "truncated at record {record} (byte {offset})")
            }
            JournalTail::Corrupted {
                record,
                offset,
                reason,
            } => write!(f, "corrupted at record {record} (byte {offset}): {reason}"),
        }
    }
}

/// A streaming, zero-copy reader over a journal's bytes.
///
/// Iterate it to receive each record's payload in order; iteration ends
/// at the first damage (or the clean end), after which [`Cursor::tail`]
/// says how the journal ended, [`Cursor::head`]/[`Cursor::records`]
/// describe the verified prefix, and [`Cursor::valid_len`] is the byte
/// length of that prefix (header included) — what a resuming writer
/// truncates the file to.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    head: ChainHash,
    records: usize,
    valid_len: usize,
    version: Option<u32>,
    tail: Option<JournalTail>,
}

impl<'a> Cursor<'a> {
    /// A cursor over `bytes`, vetting the header immediately: a short or
    /// alien header yields zero records with the damage reported at
    /// record 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        let mut cursor = Cursor {
            bytes,
            pos: 0,
            head: GENESIS,
            records: 0,
            valid_len: 0,
            version: None,
            tail: None,
        };
        if bytes.len() < HEADER_LEN {
            cursor.tail = Some(JournalTail::Truncated {
                record: 0,
                offset: 0,
            });
        } else if &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            cursor.tail = Some(JournalTail::Corrupted {
                record: 0,
                offset: 0,
                reason: "bad magic",
            });
        } else {
            cursor.version = Some(u32::from_le_bytes(
                bytes[JOURNAL_MAGIC.len()..HEADER_LEN]
                    .try_into()
                    .expect("four bytes"),
            ));
            cursor.pos = HEADER_LEN;
            cursor.valid_len = HEADER_LEN;
        }
        cursor
    }

    /// The header's version field (`None` when the header itself was
    /// damaged). The cursor does not interpret it — a caller compares it
    /// against the version *it* writes and treats a mismatch as a cold
    /// (re-creatable) journal.
    pub fn version(&self) -> Option<u32> {
        self.version
    }

    /// The chain link after the last verified record.
    pub fn head(&self) -> ChainHash {
        self.head
    }

    /// How many records have been verified so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// The byte length of the verified prefix (header included): the
    /// length to truncate a damaged journal file to before resuming.
    pub fn valid_len(&self) -> usize {
        self.valid_len
    }

    /// How the replay ended. Before iteration finishes this reports the
    /// damage found so far, if any; after `next()` has returned `None`
    /// it is always `Some`.
    pub fn tail(&self) -> Option<JournalTail> {
        self.tail
    }

    /// Drives the cursor to the end and reports how the journal ended.
    pub fn finish(mut self) -> JournalTail {
        for _ in self.by_ref() {}
        self.tail.expect("exhausted cursor has a tail")
    }
}

impl<'a> Iterator for Cursor<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.tail.is_some() {
            return None;
        }
        let start = self.pos;
        if start == self.bytes.len() {
            self.tail = Some(JournalTail::Clean);
            return None;
        }
        let truncated = JournalTail::Truncated {
            record: self.records,
            offset: start,
        };
        if self.bytes.len() - start < 4 {
            self.tail = Some(truncated);
            return None;
        }
        let len = u32::from_le_bytes(self.bytes[start..start + 4].try_into().expect("four bytes"));
        if len > MAX_RECORD_LEN {
            self.tail = Some(JournalTail::Corrupted {
                record: self.records,
                offset: start,
                reason: "oversized length prefix",
            });
            return None;
        }
        let total = RECORD_OVERHEAD + len as usize;
        if self.bytes.len() - start < total {
            self.tail = Some(truncated);
            return None;
        }
        let payload = &self.bytes[start + 4..start + 4 + len as usize];
        let stored = ChainHash::from_le_bytes(
            self.bytes[start + 4 + len as usize..start + total]
                .try_into()
                .expect("sixteen bytes"),
        );
        let expected = self.head.extend(payload);
        if stored != expected {
            self.tail = Some(JournalTail::Corrupted {
                record: self.records,
                offset: start,
                reason: "hash chain mismatch",
            });
            return None;
        }
        self.head = expected;
        self.records += 1;
        self.pos = start + total;
        self.valid_len = self.pos;
        Some(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(payloads: &[&[u8]]) -> Vec<u8> {
        let mut writer = JournalWriter::create(Vec::new(), 1).expect("vec sink");
        for p in payloads {
            writer.append(p).expect("vec sink");
        }
        writer.into_inner()
    }

    #[test]
    fn replay_returns_the_records_in_order() {
        let bytes = journal(&[b"alpha", b"", b"gamma"]);
        let mut cursor = Cursor::new(&bytes);
        assert_eq!(cursor.version(), Some(1));
        let records: Vec<_> = cursor.by_ref().collect();
        assert_eq!(records, vec![b"alpha" as &[u8], b"", b"gamma"]);
        assert_eq!(cursor.tail(), Some(JournalTail::Clean));
        assert_eq!(cursor.records(), 3);
        assert_eq!(cursor.valid_len(), bytes.len());
    }

    #[test]
    fn an_empty_journal_is_clean() {
        let bytes = journal(&[]);
        assert_eq!(bytes.len(), HEADER_LEN);
        let mut cursor = Cursor::new(&bytes);
        assert_eq!(cursor.next(), None);
        assert_eq!(cursor.tail(), Some(JournalTail::Clean));
    }

    #[test]
    fn resume_continues_the_chain_identically() {
        let all_at_once = journal(&[b"one", b"two", b"three"]);
        let mut first = JournalWriter::create(Vec::new(), 1).unwrap();
        first.append(b"one").unwrap();
        first.append(b"two").unwrap();
        let (head, records) = (first.head(), first.records());
        let mut bytes = first.into_inner();
        let mut resumed = JournalWriter::resume(&mut bytes, head, records);
        resumed.append(b"three").unwrap();
        assert_eq!(resumed.records(), 3);
        assert_eq!(bytes, all_at_once, "resume is byte-for-byte seamless");
    }

    #[test]
    fn a_partial_tail_is_reported_and_the_prefix_survives() {
        let whole = journal(&[b"keep-me", b"partial"]);
        let one = journal(&[b"keep-me"]);
        for cut in one.len() + 1..whole.len() {
            let mut cursor = Cursor::new(&whole[..cut]);
            let records: Vec<_> = cursor.by_ref().collect();
            assert_eq!(records, vec![b"keep-me" as &[u8]], "cut at {cut}");
            assert_eq!(
                cursor.tail(),
                Some(JournalTail::Truncated {
                    record: 1,
                    offset: one.len(),
                }),
            );
            assert_eq!(cursor.valid_len(), one.len());
        }
    }

    #[test]
    fn header_damage_yields_no_records() {
        for bytes in [&b""[..], &b"seta"[..], &b"not-a-journal-at-all!"[..]] {
            let mut cursor = Cursor::new(bytes);
            assert_eq!(cursor.next(), None);
            let tail = cursor.tail().expect("ended");
            assert!(!tail.is_clean(), "{tail}");
            assert_eq!(cursor.records(), 0);
        }
    }

    #[test]
    fn oversized_length_prefixes_are_corruption_not_allocation() {
        let mut bytes = journal(&[]);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 8]);
        let tail = Cursor::new(&bytes).finish();
        assert_eq!(
            tail,
            JournalTail::Corrupted {
                record: 0,
                offset: HEADER_LEN,
                reason: "oversized length prefix",
            }
        );
    }

    #[test]
    fn oversized_appends_are_rejected_up_front() {
        let mut writer = JournalWriter::create(Vec::new(), 1).unwrap();
        let err = writer
            .append(&vec![0u8; MAX_RECORD_LEN as usize + 1])
            .expect_err("over the cap");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(writer.records(), 0, "nothing was written");
    }
}
