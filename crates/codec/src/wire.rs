//! Primitive binary encoding: little-endian fixed-width fields behind a
//! [`Writer`]/[`Reader`] pair.
//!
//! The discipline every decoder in the workspace follows lives here:
//!
//! * **never panic** — a [`Reader`] hands back [`DecodeError`] for any
//!   shortfall instead of indexing out of bounds;
//! * **never allocate on faith** — counts and lengths read from the wire
//!   are checked against [`Reader::remaining`] *before* any allocation
//!   (each encoded element occupies at least one byte, so a count larger
//!   than the bytes left is provably garbage). A hostile length prefix
//!   is an error, not an allocation request.

use std::error::Error;
use std::fmt;

/// A decode failure: the input did not hold a valid encoding.
///
/// All variants are ordinary values — decoding arbitrary bytes returns
/// one of these, it never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The input ended before the encoding did.
    Truncated,
    /// A length or count field exceeds the bytes actually present (or a
    /// hard cap), so honoring it would allocate unbounded memory.
    Oversized {
        /// The claimed length or element count.
        claimed: u64,
    },
    /// A field held a value outside its domain (unknown tag, bad UTF-8,
    /// out-of-range integer …).
    Invalid {
        /// Which field was malformed.
        what: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated mid-encoding"),
            DecodeError::Oversized { claimed } => {
                write!(f, "claimed length {claimed} exceeds the available bytes")
            }
            DecodeError::Invalid { what } => write!(f, "invalid field: {what}"),
        }
    }
}

impl Error for DecodeError {}

/// Appends fixed-width little-endian fields to a byte buffer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// How many bytes have been written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (widths differ across platforms; the
    /// wire form does not).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends raw bytes with no framing (the caller has written the
    /// length, or the field is fixed-width).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed (`u32`) byte string.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.u32(bytes.len() as u32);
        self.raw(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Reads fixed-width little-endian fields off a byte slice, without ever
/// panicking or over-allocating.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// How many bytes remain unread.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when fewer than four bytes remain.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("four bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when fewer than eight bytes remain.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("eight bytes"),
        ))
    }

    /// Reads a `u64` written by [`Writer::usize`] back into a `usize`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input;
    /// [`DecodeError::Invalid`] when the value does not fit this
    /// platform's `usize`.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        self.u64()?.try_into().map_err(|_| DecodeError::Invalid {
            what: "usize field",
        })
    }

    /// Reads an element count and vets it against the remaining input:
    /// each element of the collection about to be decoded occupies at
    /// least `min_element_size` bytes, so any count claiming more is
    /// rejected *before* the caller allocates.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input;
    /// [`DecodeError::Oversized`] when the count is provably garbage.
    pub fn count(&mut self, min_element_size: usize) -> Result<usize, DecodeError> {
        let claimed = self.u64()?;
        let fits = usize::try_from(claimed)
            .ok()
            .and_then(|c| c.checked_mul(min_element_size.max(1)))
            .is_some_and(|need| need <= self.remaining());
        if !fits {
            return Err(DecodeError::Oversized { claimed });
        }
        Ok(claimed as usize)
    }

    /// Reads a length-prefixed byte string written by [`Writer::bytes`].
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] on short input;
    /// [`DecodeError::Oversized`] when the prefix claims more bytes than
    /// remain.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(DecodeError::Oversized {
                claimed: len as u64,
            });
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string written by [`Writer::str`].
    ///
    /// # Errors
    ///
    /// As [`Reader::bytes`], plus [`DecodeError::Invalid`] for non-UTF-8
    /// contents.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| DecodeError::Invalid {
            what: "utf-8 string",
        })
    }

    /// Demands that every byte was consumed — trailing garbage after a
    /// complete encoding is a malformed input, not a success.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Invalid`] when bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::Invalid {
                what: "trailing bytes",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.usize(42);
        w.str("héllo");
        w.bytes(b"");
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), b"");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn truncation_is_an_error_at_every_cut() {
        let mut w = Writer::new();
        w.u64(9);
        w.str("abc");
        let buf = w.into_vec();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let decoded = r.u64().and_then(|v| r.str().map(|s| (v, s.to_owned())));
            assert!(decoded.is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn hostile_counts_and_lengths_do_not_allocate() {
        // A count claiming u64::MAX elements over a 16-byte input.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        w.u64(0);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(
            r.count(1),
            Err(DecodeError::Oversized { claimed: u64::MAX })
        );
        // A string length prefix pointing past the end.
        let mut w = Writer::new();
        w.u32(1000);
        w.raw(b"short");
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes(), Err(DecodeError::Oversized { claimed: 1000 }));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(
            r.finish(),
            Err(DecodeError::Invalid {
                what: "trailing bytes"
            })
        );
    }
}
