//! Wire form of the dense state engine's containers.
//!
//! The networked tier floods views; on the wire a [`DenseView`] is its
//! interned essence — a domain size plus one `u32` id slot per process
//! (`u32::MAX` marks `⊥`), exactly the flat array the engine stores, so
//! encoding is a bulk copy and decoding re-validates every slot against
//! the declared domain before a view is built. Same discipline as the
//! rest of the crate: never panic, never allocate on a hostile count.
//!
//! # Example
//!
//! ```
//! use setagree_codec::{decode_dense_view, encode_dense_view, Reader, Writer};
//! use setagree_types::{DenseView, ProcessId, ValueId, ValueTable};
//!
//! let table = ValueTable::from_values([10u32, 20, 30]);
//! let mut view = DenseView::all_bottom(5, &table);
//! view.set(ProcessId::new(2), table.id_of(&20).unwrap());
//!
//! let mut w = Writer::new();
//! encode_dense_view(&mut w, &view);
//! let bytes = w.into_vec();
//!
//! let mut r = Reader::new(&bytes);
//! assert_eq!(decode_dense_view(&mut r)?, view);
//! # Ok::<(), setagree_codec::DecodeError>(())
//! ```

use setagree_types::DenseView;

use crate::wire::{DecodeError, Reader, Writer};

/// Encodes a dense view: `u32` domain, `u64` entry count, then one `u32`
/// id slot per process (`u32::MAX` is `⊥`).
pub fn encode_dense_view(w: &mut Writer, view: &DenseView) {
    w.u32(view.domain() as u32);
    w.usize(view.len());
    for &slot in view.as_slots() {
        w.u32(slot);
    }
}

/// Decodes a dense view written by [`encode_dense_view`].
///
/// # Errors
///
/// [`DecodeError::Truncated`]/[`DecodeError::Oversized`] on short input
/// or a hostile entry count (vetted before any allocation);
/// [`DecodeError::Invalid`] when the view is empty or an observed slot
/// is outside the declared domain.
pub fn decode_dense_view(r: &mut Reader<'_>) -> Result<DenseView, DecodeError> {
    let domain = r.u32()? as usize;
    let n = r.count(4)?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        slots.push(r.u32()?);
    }
    DenseView::from_slots(domain, &slots).ok_or(DecodeError::Invalid {
        what: "dense view (empty or slot outside its domain)",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use setagree_types::{ProcessId, ValueId, ValueTable};

    fn sample(n: usize) -> DenseView {
        let table = ValueTable::from_values(0u32..8);
        let mut view = DenseView::all_bottom(n, &table);
        for i in (0..n).step_by(3) {
            view.set(ProcessId::new(i), ValueId::new((i % 8) as u32));
        }
        view
    }

    #[test]
    fn round_trips_inline_and_heap_views() {
        for n in [1usize, 3, 16, 17, 64, 65, 130] {
            let view = sample(n);
            let mut w = Writer::new();
            encode_dense_view(&mut w, &view);
            let bytes = w.into_vec();
            let mut r = Reader::new(&bytes);
            assert_eq!(decode_dense_view(&mut r).unwrap(), view, "n = {n}");
            assert_eq!(r.finish(), Ok(()));
        }
    }

    #[test]
    fn hostile_count_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u32(8);
        w.u64(u64::MAX); // claims ~2^64 entries with no bytes behind them
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            decode_dense_view(&mut r),
            Err(DecodeError::Oversized { claimed: u64::MAX })
        );
    }

    #[test]
    fn out_of_domain_slot_is_invalid() {
        let mut w = Writer::new();
        w.u32(2); // domain {0, 1}
        w.usize(1);
        w.u32(5); // claims id 5
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            decode_dense_view(&mut r),
            Err(DecodeError::Invalid { .. })
        ));
    }

    #[test]
    fn empty_view_is_invalid() {
        let mut w = Writer::new();
        w.u32(2);
        w.usize(0);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            decode_dense_view(&mut r),
            Err(DecodeError::Invalid { .. })
        ));
    }

    #[test]
    fn truncated_slots_are_reported() {
        let view = sample(10);
        let mut w = Writer::new();
        encode_dense_view(&mut w, &view);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes[..bytes.len() - 2]);
        assert!(decode_dense_view(&mut r).is_err());
    }
}
