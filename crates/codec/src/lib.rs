//! # setagree-codec — the wire tier
//!
//! The build environment is offline and the vendored `serde` is a no-op
//! shim (its derives expand to nothing), so every byte that crosses a
//! process or file boundary in this workspace goes through the explicit,
//! hand-rolled codecs in this crate. Three layers, bottom up:
//!
//! * [`wire`] — primitive little-endian [`Writer`]/[`Reader`] pairs with
//!   a never-panicking, allocation-bounded decode discipline: a reader
//!   checks every length and count against the bytes it actually holds
//!   before allocating, so hostile input cannot balloon memory.
//! * [`frame`] — the length-prefixed network [`Frame`] of the TCP
//!   transport (extracted from `setagree-node`, which re-exports it).
//! * [`chain`] + [`journal`] — an append-only, **hash-chained execution
//!   journal**: every record stores the dual-basis FNV-1a hash of
//!   (predecessor hash ‖ payload), a [`Cursor`] streams records back for
//!   replay, and a truncated or corrupted tail is *detected and
//!   reported* ([`JournalTail`]) rather than panicked on — the valid
//!   prefix always survives. This is what makes suite sweeps resumable
//!   after a crash.
//!
//! Decoding arbitrary bytes through any of these layers never panics; a
//! fuzz-grade proptest battery (`tests/journal_roundtrip.rs`,
//! `tests/journal_chain.rs` at the workspace root) pins both that and
//! byte-identical round-trips.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod chain;
pub mod dense;
pub mod frame;
pub mod journal;
pub mod obs;
pub mod wire;

pub use chain::ChainHash;
pub use dense::{decode_dense_view, encode_dense_view};
pub use frame::{Frame, FrameError, FrameKind, MAX_FRAME_LEN};
pub use journal::{Cursor, JournalTail, JournalWriter, JOURNAL_MAGIC, MAX_RECORD_LEN};
pub use obs::SnapshotCodec;
pub use wire::{DecodeError, Reader, Writer};
