//! Binary encoding for metrics snapshots ([`SnapshotCodec`]), so a
//! snapshot can ride inside journals and cache files and a replayed run
//! carries its own telemetry.
//!
//! The encoding follows the crate's discipline: fixed-width
//! little-endian fields through [`Writer`]/[`Reader`], counts vetted
//! before any allocation, decode of arbitrary bytes never panics. It
//! writes the snapshot's canonical entry order verbatim, so
//! encode→decode→re-encode is byte-identical (pinned by the proptest
//! battery in `tests/obs_roundtrip.rs`).

use setagree_obs::{HistogramData, MetricValue, Snapshot, SnapshotEntry};

use crate::wire::{DecodeError, Reader, Writer};

/// Kind tags on the wire.
const TAG_COUNTER: u8 = 0;
const TAG_GAUGE: u8 = 1;
const TAG_HISTOGRAM: u8 = 2;

/// The binary codec for [`Snapshot`]s.
///
/// A unit struct (like the other codecs in this crate) so call sites
/// read `SnapshotCodec::encode(…)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotCodec;

impl SnapshotCodec {
    /// Encodes a snapshot as a self-contained byte string.
    pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
        let mut w = Writer::new();
        Self::encode_into(&mut w, snapshot);
        w.into_vec()
    }

    /// Appends a snapshot's encoding to an in-progress [`Writer`] — the
    /// embedded form journals and cache records use.
    pub fn encode_into(w: &mut Writer, snapshot: &Snapshot) {
        let entries = snapshot.entries();
        w.usize(entries.len());
        for entry in entries {
            w.str(&entry.name);
            w.usize(entry.labels.len());
            for (k, v) in &entry.labels {
                w.str(k);
                w.str(v);
            }
            match &entry.value {
                MetricValue::Counter(v) => {
                    w.u8(TAG_COUNTER);
                    w.u64(*v);
                }
                MetricValue::Gauge(v) => {
                    w.u8(TAG_GAUGE);
                    w.u64(*v as u64);
                }
                MetricValue::Histogram(h) => {
                    w.u8(TAG_HISTOGRAM);
                    w.u64(h.count);
                    w.u64(h.sum);
                    w.usize(h.buckets.len());
                    for &(idx, n) in &h.buckets {
                        w.u8(idx);
                        w.u64(n);
                    }
                }
            }
        }
    }

    /// Decodes a self-contained snapshot, demanding every byte is
    /// consumed.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for truncated, oversized, or invalid input —
    /// arbitrary bytes never panic and never allocate unbounded memory.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, DecodeError> {
        let mut r = Reader::new(bytes);
        let snapshot = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(snapshot)
    }

    /// Decodes a snapshot from an in-progress [`Reader`], leaving any
    /// following fields unread (the embedded form).
    ///
    /// # Errors
    ///
    /// As [`SnapshotCodec::decode`].
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Snapshot, DecodeError> {
        // The smallest entry is an empty-name counter:
        // 4 (name len) + 8 (label count) + 1 (tag) + 8 (value).
        let entries = r.count(21)?;
        let mut snapshot = Snapshot::new();
        for _ in 0..entries {
            let name = r.str()?.to_string();
            // A label is two length-prefixed strings: ≥ 8 bytes.
            let label_count = r.count(8)?;
            let mut labels = Vec::with_capacity(label_count);
            for _ in 0..label_count {
                let k = r.str()?.to_string();
                let v = r.str()?.to_string();
                labels.push((k, v));
            }
            let value = match r.u8()? {
                TAG_COUNTER => MetricValue::Counter(r.u64()?),
                TAG_GAUGE => MetricValue::Gauge(r.u64()? as i64),
                TAG_HISTOGRAM => {
                    let count = r.u64()?;
                    let sum = r.u64()?;
                    // A bucket is a u8 index plus a u64 occupancy.
                    let bucket_count = r.count(9)?;
                    let mut buckets = Vec::with_capacity(bucket_count);
                    for _ in 0..bucket_count {
                        let idx = r.u8()?;
                        let n = r.u64()?;
                        buckets.push((idx, n));
                    }
                    MetricValue::Histogram(HistogramData {
                        count,
                        sum,
                        buckets,
                    })
                }
                _ => {
                    return Err(DecodeError::Invalid {
                        what: "snapshot metric kind tag",
                    })
                }
            };
            snapshot.add_entry(SnapshotEntry {
                name,
                labels,
                value,
            });
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        s.add_entry(SnapshotEntry {
            name: "suite_cache_hits".to_string(),
            labels: Vec::new(),
            value: MetricValue::Counter(17),
        });
        s.add_entry(SnapshotEntry {
            name: "pool_idle".to_string(),
            labels: Vec::new(),
            value: MetricValue::Gauge(-4),
        });
        s.add_entry(SnapshotEntry {
            name: "tcp_frames_sent".to_string(),
            labels: vec![("kind".to_string(), "msg".to_string())],
            value: MetricValue::Counter(99),
        });
        s.add_entry(SnapshotEntry {
            name: "node_round_duration_us".to_string(),
            labels: Vec::new(),
            value: MetricValue::Histogram(HistogramData {
                count: 5,
                sum: 1234,
                buckets: vec![(7, 3), (11, 2)],
            }),
        });
        s
    }

    #[test]
    fn round_trips_byte_identically() {
        let snapshot = sample();
        let bytes = SnapshotCodec::encode(&snapshot);
        let decoded = SnapshotCodec::decode(&bytes).expect("valid encoding");
        assert_eq!(decoded, snapshot);
        assert_eq!(SnapshotCodec::encode(&decoded), bytes);
    }

    #[test]
    fn embedded_form_leaves_the_tail() {
        let snapshot = sample();
        let mut w = Writer::new();
        SnapshotCodec::encode_into(&mut w, &snapshot);
        w.u32(0xFEED);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        let decoded = SnapshotCodec::decode_from(&mut r).expect("valid embedding");
        assert_eq!(decoded, snapshot);
        assert_eq!(r.u32().unwrap(), 0xFEED);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn truncation_and_junk_are_errors_not_panics() {
        let bytes = SnapshotCodec::encode(&sample());
        for cut in 0..bytes.len() {
            assert!(SnapshotCodec::decode(&bytes[..cut]).is_err());
        }
        assert!(SnapshotCodec::decode(&[0xFF; 40]).is_err());
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocating() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // entry count
        let err = SnapshotCodec::decode(&w.into_vec()).unwrap_err();
        assert!(matches!(err, DecodeError::Oversized { .. }));
    }
}
