//! The journal's hash chain: dual-basis FNV-1a over
//! (predecessor hash ‖ payload).
//!
//! Each journal record stores a [`ChainHash`] computed from the previous
//! record's hash and its own payload, so the whole file is one linked
//! commitment: flipping any single byte of any record — payload, length
//! prefix, or stored hash — breaks verification at that record, and the
//! records before it remain provably intact. FNV-1a's per-byte step
//! (XOR, then multiply by an odd prime) is a bijection of the state, so
//! a one-byte change *always* changes each 64-bit half; the two halves
//! walk the same bytes from independent offset bases, giving a 128-bit
//! check that makes an accidental collision negligible.
//!
//! The same constants back `setagree-core`'s stable cache keys — one
//! hash family for every durable artifact in the workspace.

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
/// The standard FNV-1a offset basis (the `lo` half's starting state).
pub const FNV_BASIS_LO: u64 = 0xCBF2_9CE4_8422_2325;
/// An alternative basis for the `hi` half, so the two halves are
/// independent walks over the same bytes.
pub const FNV_BASIS_HI: u64 = 0x6C62_272E_07BB_0142;

/// A 128-bit chain link: two independent FNV-1a walks over the same
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChainHash {
    /// The half seeded from [`FNV_BASIS_HI`].
    pub hi: u64,
    /// The half seeded from [`FNV_BASIS_LO`].
    pub lo: u64,
}

/// The chain's starting point: the hash "before" the first record, fixed
/// so that two journals holding the same records hash identically.
pub const GENESIS: ChainHash = ChainHash {
    hi: FNV_BASIS_HI,
    lo: FNV_BASIS_LO,
};

fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

impl ChainHash {
    /// The next link: the hash of this link's bytes followed by
    /// `payload`, from both bases.
    #[must_use]
    pub fn extend(self, payload: &[u8]) -> ChainHash {
        let prev = self.to_le_bytes();
        ChainHash {
            hi: fnv1a(fnv1a(FNV_BASIS_HI, &prev), payload),
            lo: fnv1a(fnv1a(FNV_BASIS_LO, &prev), payload),
        }
    }

    /// The hash's 16-byte wire form (`hi` then `lo`, little-endian).
    pub fn to_le_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.hi.to_le_bytes());
        out[8..].copy_from_slice(&self.lo.to_le_bytes());
        out
    }

    /// Reads a hash back from its wire form.
    pub fn from_le_bytes(bytes: [u8; 16]) -> ChainHash {
        ChainHash {
            hi: u64::from_le_bytes(bytes[..8].try_into().expect("eight bytes")),
            lo: u64::from_le_bytes(bytes[8..].try_into().expect("eight bytes")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_is_deterministic_and_order_sensitive() {
        let a = GENESIS.extend(b"one").extend(b"two");
        let b = GENESIS.extend(b"one").extend(b"two");
        assert_eq!(a, b);
        assert_ne!(a, GENESIS.extend(b"two").extend(b"one"));
        assert_ne!(a.hi, a.lo, "the halves walk independently");
    }

    #[test]
    fn any_single_byte_flip_changes_the_hash() {
        let payload = b"the quick brown fox".to_vec();
        let baseline = GENESIS.extend(&payload);
        for i in 0..payload.len() {
            let mut tampered = payload.clone();
            tampered[i] ^= 0xFF;
            assert_ne!(GENESIS.extend(&tampered), baseline, "flip at {i}");
        }
    }

    #[test]
    fn wire_form_round_trips() {
        let h = GENESIS.extend(b"payload");
        assert_eq!(ChainHash::from_le_bytes(h.to_le_bytes()), h);
    }

    #[test]
    fn empty_payload_still_advances_the_chain() {
        assert_ne!(GENESIS.extend(b""), GENESIS);
        assert_ne!(GENESIS.extend(b"").extend(b""), GENESIS.extend(b""));
    }
}
