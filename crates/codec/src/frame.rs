//! Length-prefixed binary frames: the wire format of the TCP transport.
//!
//! The vendored `serde` shim is a no-op (its derives expand to nothing),
//! so the networked tier routes through this hand-rolled codec (born in
//! `setagree-node`, which still re-exports it from here). The format is
//! deliberately minimal — four fixed-width little-endian fields plus an
//! opaque payload — and fully self-describing on the wire:
//!
//! ```text
//! ┌─────────────┬──────────┬────────────┬─────────────┬─────────────┐
//! │ len: u32 LE │ kind: u8 │ from: u32  │ round: u32  │ payload …   │
//! │ (rest size) │          │ LE         │ LE          │ (len − 9 B) │
//! └─────────────┴──────────┴────────────┴─────────────┴─────────────┘
//! ```
//!
//! `len` counts everything after itself, so a frame occupies `4 + len`
//! bytes and a reader can delimit frames without understanding them.
//! Frames whose `len` exceeds [`MAX_FRAME_LEN`] are rejected before any
//! allocation — a garbage or hostile length prefix cannot balloon memory.
//! Decoding never panics on arbitrary input (a property pinned by the
//! decode-anything proptests in `tests/node_equivalence.rs`).

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use setagree_types::ProcessId;

/// Hard ceiling on the length prefix (16 MiB): anything larger is treated
/// as a malformed stream, not an allocation request.
pub const MAX_FRAME_LEN: u32 = 1 << 24;

/// The fixed-width portion after the length prefix: kind (1) + from (4) +
/// round (4).
const HEADER_LEN: usize = 9;

/// What a frame means to the round protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Connection handshake: identifies the sender (`from`; `round` is 0,
    /// payload empty).
    Hello,
    /// A round broadcast payload.
    Msg,
    /// The sender has settled (decided) and will send nothing further;
    /// peers stop waiting for it in later rounds.
    Settled,
    /// A recovery request: `from` is missing `round` broadcasts and asks
    /// the receiver to relay what it has seen (payload empty). Sent by a
    /// self-healing transport when a round stalls past its suspicion
    /// deadline.
    Resend,
    /// A relayed round broadcast answering a [`FrameKind::Resend`]:
    /// `from` is the *relayer*, the payload is the original sender's
    /// id (u32 LE) followed by its original payload. Relays carry
    /// already-delivered data, so injected link faults never apply to
    /// them — recovery frames model recovery, not fresh transmissions.
    Relay,
}

impl FrameKind {
    fn code(self) -> u8 {
        match self {
            FrameKind::Hello => 0,
            FrameKind::Msg => 1,
            FrameKind::Settled => 2,
            FrameKind::Resend => 3,
            FrameKind::Relay => 4,
        }
    }

    fn from_code(code: u8) -> Option<FrameKind> {
        match code {
            0 => Some(FrameKind::Hello),
            1 => Some(FrameKind::Msg),
            2 => Some(FrameKind::Settled),
            3 => Some(FrameKind::Resend),
            4 => Some(FrameKind::Relay),
            _ => None,
        }
    }
}

/// One wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame's meaning.
    pub kind: FrameKind,
    /// The sending process.
    pub from: ProcessId,
    /// The (1-based) round the frame belongs to (0 for handshakes).
    pub round: usize,
    /// The opaque protocol payload (empty except for [`FrameKind::Msg`]).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A handshake frame identifying `from`.
    pub fn hello(from: ProcessId) -> Frame {
        Frame {
            kind: FrameKind::Hello,
            from,
            round: 0,
            payload: Vec::new(),
        }
    }

    /// A round broadcast carrying `payload`.
    pub fn msg(from: ProcessId, round: usize, payload: Vec<u8>) -> Frame {
        Frame {
            kind: FrameKind::Msg,
            from,
            round,
            payload,
        }
    }

    /// A settlement notice: `from` decided at the end of `round`.
    pub fn settled(from: ProcessId, round: usize) -> Frame {
        Frame {
            kind: FrameKind::Settled,
            from,
            round,
            payload: Vec::new(),
        }
    }

    /// A recovery request: `from` is missing `round` broadcasts.
    pub fn resend(from: ProcessId, round: usize) -> Frame {
        Frame {
            kind: FrameKind::Resend,
            from,
            round,
            payload: Vec::new(),
        }
    }

    /// A relay of `original`'s `round` broadcast, forwarded by `relayer`.
    pub fn relay(relayer: ProcessId, original: ProcessId, round: usize, payload: &[u8]) -> Frame {
        let mut body = Vec::with_capacity(4 + payload.len());
        body.extend_from_slice(&(original.index() as u32).to_le_bytes());
        body.extend_from_slice(payload);
        Frame {
            kind: FrameKind::Relay,
            from: relayer,
            round,
            payload: body,
        }
    }

    /// Splits a [`FrameKind::Relay`] payload into the original sender and
    /// its original payload; `None` when the payload is too short to hold
    /// the sender id (a malformed relay is dropped, never a panic).
    pub fn relay_parts(&self) -> Option<(ProcessId, &[u8])> {
        if self.kind != FrameKind::Relay || self.payload.len() < 4 {
            return None;
        }
        let original = u32::from_le_bytes(self.payload[..4].try_into().expect("four bytes"));
        Some((ProcessId::new(original as usize), &self.payload[4..]))
    }

    /// Appends the frame's wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let len = (HEADER_LEN + self.payload.len()) as u32;
        out.extend_from_slice(&len.to_le_bytes());
        out.push(self.kind.code());
        out.extend_from_slice(&(self.from.index() as u32).to_le_bytes());
        out.extend_from_slice(&(self.round as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// The frame's wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + HEADER_LEN + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame from the front of `bytes`, returning it together
    /// with the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] when `bytes` does not yet hold a whole
    /// frame (an incremental decoder reads more and retries); the other
    /// variants mark the stream as malformed.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), FrameError> {
        if bytes.len() < 4 {
            return Err(FrameError::Truncated);
        }
        let len = u32::from_le_bytes(bytes[..4].try_into().expect("four bytes"));
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized { len });
        }
        if (len as usize) < HEADER_LEN {
            return Err(FrameError::BodyTooShort { len });
        }
        let total = 4 + len as usize;
        if bytes.len() < total {
            return Err(FrameError::Truncated);
        }
        let body = &bytes[4..total];
        let kind =
            FrameKind::from_code(body[0]).ok_or(FrameError::UnknownKind { code: body[0] })?;
        let from = u32::from_le_bytes(body[1..5].try_into().expect("four bytes"));
        let round = u32::from_le_bytes(body[5..9].try_into().expect("four bytes"));
        Ok((
            Frame {
                kind,
                from: ProcessId::new(from as usize),
                round: round as usize,
                payload: body[HEADER_LEN..].to_vec(),
            },
            total,
        ))
    }

    /// Writes the frame to `w` (no flush).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Reads one frame from `r`, blocking until it is complete.
    ///
    /// Returns `Ok(None)` on a clean end-of-stream at a frame boundary —
    /// to the TCP transport, *any* end-of-stream means the peer died (a
    /// kill-based crash), so callers usually treat `Ok(None)` and `Err`
    /// alike.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Frame>, FrameError> {
        let mut prefix = [0u8; 4];
        match r.read_exact(&mut prefix) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(FrameError::Io { kind: e.kind() }),
        }
        let len = u32::from_le_bytes(prefix);
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized { len });
        }
        if (len as usize) < HEADER_LEN {
            return Err(FrameError::BodyTooShort { len });
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)
            .map_err(|e| FrameError::Io { kind: e.kind() })?;
        let mut whole = prefix.to_vec();
        whole.extend_from_slice(&body);
        Frame::decode(&whole).map(|(frame, _)| Some(frame))
    }
}

/// A malformed or incomplete frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The buffer does not yet hold a whole frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The claimed length.
        len: u32,
    },
    /// The length prefix is smaller than the fixed header.
    BodyTooShort {
        /// The claimed length.
        len: u32,
    },
    /// The kind byte is not a known [`FrameKind`].
    UnknownKind {
        /// The unknown code.
        code: u8,
    },
    /// An I/O error interrupted a blocking read.
    Io {
        /// The I/O error kind.
        kind: io::ErrorKind,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "incomplete frame"),
            FrameError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            FrameError::BodyTooShort { len } => {
                write!(f, "frame length {len} is shorter than the fixed header")
            }
            FrameError::UnknownKind { code } => write!(f, "unknown frame kind {code}"),
            FrameError::Io { kind } => write!(f, "i/o error reading frame: {kind}"),
        }
    }
}

impl Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_the_wire_encoding() {
        for frame in [
            Frame::hello(ProcessId::new(3)),
            Frame::msg(ProcessId::new(0), 7, vec![1, 2, 3, 255]),
            Frame::settled(ProcessId::new(11), 4),
            Frame::msg(ProcessId::new(2), 1, Vec::new()),
            Frame::resend(ProcessId::new(1), 6),
            Frame::relay(ProcessId::new(2), ProcessId::new(4), 6, &[8, 9]),
        ] {
            let bytes = frame.encode();
            let (decoded, consumed) = Frame::decode(&bytes).expect("valid frame");
            assert_eq!(decoded, frame);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn decode_delimits_back_to_back_frames() {
        let a = Frame::msg(ProcessId::new(0), 1, vec![9]);
        let b = Frame::settled(ProcessId::new(1), 1);
        let mut wire = a.encode();
        b.encode_into(&mut wire);
        let (first, used) = Frame::decode(&wire).expect("first frame");
        assert_eq!(first, a);
        let (second, rest) = Frame::decode(&wire[used..]).expect("second frame");
        assert_eq!(second, b);
        assert_eq!(used + rest, wire.len());
    }

    #[test]
    fn truncation_is_recoverable_not_fatal() {
        let bytes = Frame::msg(ProcessId::new(1), 2, vec![5, 6, 7]).encode();
        for cut in 0..bytes.len() {
            assert_eq!(Frame::decode(&bytes[..cut]), Err(FrameError::Truncated));
        }
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_without_allocating() {
        let mut wire = u32::MAX.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0; 16]);
        assert_eq!(
            Frame::decode(&wire),
            Err(FrameError::Oversized { len: u32::MAX })
        );
        let short = 3u32.to_le_bytes().to_vec();
        assert_eq!(
            Frame::decode(&[short, vec![0; 8]].concat()),
            Err(FrameError::BodyTooShort { len: 3 })
        );
    }

    #[test]
    fn unknown_kind_bytes_are_rejected() {
        let mut wire = Frame::hello(ProcessId::new(0)).encode();
        wire[4] = 9;
        assert_eq!(
            Frame::decode(&wire),
            Err(FrameError::UnknownKind { code: 9 })
        );
    }

    #[test]
    fn read_from_streams_frames_and_signals_eof() {
        let a = Frame::msg(ProcessId::new(0), 1, vec![1, 2]);
        let b = Frame::settled(ProcessId::new(1), 3);
        let mut wire = a.encode();
        b.encode_into(&mut wire);
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(a));
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(b));
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn relay_payloads_split_back_into_sender_and_body() {
        let relay = Frame::relay(ProcessId::new(2), ProcessId::new(4), 6, &[8, 9]);
        assert_eq!(
            relay.relay_parts(),
            Some((ProcessId::new(4), &[8u8, 9][..]))
        );
        // Not a relay → no parts.
        assert_eq!(
            Frame::msg(ProcessId::new(0), 1, vec![1]).relay_parts(),
            None
        );
        // A hostile relay whose payload cannot hold the sender id is
        // rejected, not a panic.
        let mut short = relay;
        short.payload.truncate(3);
        assert_eq!(short.relay_parts(), None);
    }

    #[test]
    fn read_from_rejects_mid_frame_eof() {
        let bytes = Frame::msg(ProcessId::new(0), 1, vec![1, 2, 3]).encode();
        let mut cursor = io::Cursor::new(&bytes[..bytes.len() - 1]);
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(FrameError::Io { .. })
        ));
    }
}
