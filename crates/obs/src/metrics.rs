//! The atomic metric primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! All three are lock-free after creation: a handle is an `Arc` around
//! plain atomics, so recording from the hot path is one or two relaxed
//! atomic RMWs and never takes a lock. Snapshots read with relaxed
//! ordering too — the numbers are monotone aggregates, not
//! synchronization points.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::snapshot::HistogramData;

/// Number of histogram buckets: one per power-of-two magnitude of a
/// `u64` observation (bucket 0 holds zeros).
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: 0 for 0, otherwise
/// `floor(log2(value)) + 1`, saturated into the last bucket.
///
/// Monotone in `value`, so bucket order is value order — the property
/// the proptest battery pins.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The largest value bucket `index` can hold (`u64::MAX` for the last
/// bucket) — the `le` bound the Prometheus-style rendering prints.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, pooled workers, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (negative to decrease).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-log-bucket distribution of `u64` observations.
///
/// [`BUCKETS`] power-of-two buckets plus a running sum and count; one
/// relaxed RMW per field to record. No floats, no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The canonical snapshot form: non-zero buckets only, in index
    /// order.
    pub fn data(&self) -> HistogramData {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n != 0).then_some((i as u8, n))
            })
            .collect();
        HistogramData {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_monotone_and_covers_the_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let mut prev = 0;
        for shift in 0..64 {
            let idx = bucket_index(1u64 << shift);
            assert!(idx >= prev);
            prev = idx;
        }
    }

    #[test]
    fn bounds_bracket_their_buckets() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            assert!(v <= bucket_upper_bound(idx));
            if idx > 0 {
                assert!(v > bucket_upper_bound(idx - 1));
            }
        }
    }

    #[test]
    fn histogram_accumulates() {
        let h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 10);
        let data = h.data();
        assert_eq!(data.buckets, vec![(0, 1), (bucket_index(5) as u8, 2)]);
    }

    #[test]
    fn counter_and_gauge_move() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }
}
