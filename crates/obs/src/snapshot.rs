//! Point-in-time metric snapshots: canonical, mergeable, renderable.
//!
//! A [`Snapshot`] is the registry frozen into plain data — sorted
//! entries of `(name, labels, kind)` → value. Snapshots **merge**
//! (counters and gauges add, histograms add bucket-wise), which is how
//! the testnet harness folds per-child reports into one aggregate, and
//! they render two ways:
//!
//! * [`Snapshot::render`] — Prometheus-style exposition text for
//!   humans, files, and CI greps;
//! * [`Snapshot::to_lines`] / [`Snapshot::parse_line`] — a one-entry-
//!   per-line machine form (`METRIC <kind> <name> <labels> <value…>`)
//!   that child processes print on stdout and a harness folds back.
//!
//! The binary form lives in `setagree-codec` (`SnapshotCodec`), built
//! on the same canonical ordering so encode→decode→re-encode is
//! byte-identical.

use crate::metrics::bucket_upper_bound;

/// The three metric shapes. The kind participates in the entry key, so
/// merging never has to reconcile mismatched shapes under one name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// Signed instantaneous level.
    Gauge,
    /// Fixed-log-bucket distribution.
    Histogram,
}

impl MetricKind {
    /// The single-character tag used by the line form.
    pub fn tag(self) -> char {
        match self {
            MetricKind::Counter => 'c',
            MetricKind::Gauge => 'g',
            MetricKind::Histogram => 'h',
        }
    }

    fn from_tag(tag: &str) -> Option<MetricKind> {
        match tag {
            "c" => Some(MetricKind::Counter),
            "g" => Some(MetricKind::Gauge),
            "h" => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// A frozen histogram: total count, sum, and the non-zero buckets in
/// index order (the canonical form every rendering shares).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramData {
    /// Total observations.
    pub count: u64,
    /// Sum of observations (wrapping).
    pub sum: u64,
    /// `(bucket index, occupancy)` for non-zero buckets, ascending.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramData {
    /// Adds another histogram bucket-wise.
    pub fn merge(&mut self, other: &HistogramData) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        let mut merged: Vec<(u8, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na.wrapping_add(nb)));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(_), None) => {
                    merged.extend(a.cloned());
                    break;
                }
                (None, Some(_)) => {
                    merged.extend(b.cloned());
                    break;
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

/// A snapshot value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// See [`MetricKind::Counter`].
    Counter(u64),
    /// See [`MetricKind::Gauge`].
    Gauge(i64),
    /// See [`MetricKind::Histogram`].
    Histogram(HistogramData),
}

impl MetricValue {
    /// The value's kind.
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// One named, labeled metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Metric name (`suite_cache_hits`, `tcp_frames_sent`, …).
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// The value (its kind completes the entry key).
    pub value: MetricValue,
}

impl SnapshotEntry {
    fn key(&self) -> (&str, &[(String, String)], MetricKind) {
        (&self.name, &self.labels, self.value.kind())
    }
}

/// A canonical, mergeable set of metric values.
///
/// Entries are kept sorted by `(name, labels, kind)`; every rendering
/// and the binary codec emit exactly this order, which is what makes
/// re-encoding byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// The entries, in canonical order.
    pub fn entries(&self) -> &[SnapshotEntry] {
        &self.entries
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter_map(|e| match &e.value {
                MetricValue::Counter(v) if e.name == name => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Folds one entry in: merged into an existing entry with the same
    /// `(name, labels, kind)`, inserted in canonical position otherwise.
    pub fn add_entry(&mut self, entry: SnapshotEntry) {
        let key = (entry.name.clone(), entry.labels.clone(), entry.value.kind());
        let probe = self.entries.binary_search_by(|e| {
            let k = e.key();
            (k.0, k.1, k.2).cmp(&(key.0.as_str(), key.1.as_slice(), key.2))
        });
        match probe {
            Ok(at) => match (&mut self.entries[at].value, &entry.value) {
                (MetricValue::Counter(a), MetricValue::Counter(b)) => *a = a.wrapping_add(*b),
                (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = a.wrapping_add(*b),
                (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                // Kind is part of the key, so the shapes always match.
                _ => unreachable!("entry kind mismatch despite keyed lookup"),
            },
            Err(at) => self.entries.insert(at, entry),
        }
    }

    /// Merges another snapshot in: counters and gauges add, histograms
    /// add bucket-wise. Commutative and associative (pinned by the
    /// proptest battery).
    pub fn merge(&mut self, other: &Snapshot) {
        for entry in &other.entries {
            self.add_entry(entry.clone());
        }
    }

    /// Prometheus-style exposition text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last_typed: Option<(&str, MetricKind)> = None;
        for e in &self.entries {
            let kind = e.value.kind();
            if last_typed != Some((&e.name, kind)) {
                let ty = match kind {
                    MetricKind::Counter => "counter",
                    MetricKind::Gauge => "gauge",
                    MetricKind::Histogram => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {ty}", e.name);
                last_typed = Some((&e.name, kind));
            }
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", e.name, Self::label_set(&e.labels, &[]));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", e.name, Self::label_set(&e.labels, &[]));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for &(idx, n) in &h.buckets {
                        cumulative += n;
                        let le = bucket_upper_bound(idx as usize).to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            e.name,
                            Self::label_set(&e.labels, &[("le", &le)])
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        e.name,
                        Self::label_set(&e.labels, &[("le", "+Inf")]),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        e.name,
                        Self::label_set(&e.labels, &[]),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        e.name,
                        Self::label_set(&e.labels, &[]),
                        h.count
                    );
                }
            }
        }
        out
    }

    fn label_set(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
        if labels.is_empty() && extra.is_empty() {
            return String::new();
        }
        let rendered: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .chain(extra.iter().map(|(k, v)| format!("{k}=\"{v}\"")))
            .collect();
        format!("{{{}}}", rendered.join(","))
    }

    /// The machine line form: one `METRIC …` line per entry, in
    /// canonical order. Each line parses back via [`Snapshot::parse_line`].
    pub fn to_lines(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| {
                let labels = if e.labels.is_empty() {
                    "-".to_string()
                } else {
                    e.labels
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(";")
                };
                match &e.value {
                    MetricValue::Counter(v) => format!("METRIC c {} {labels} {v}", e.name),
                    MetricValue::Gauge(v) => format!("METRIC g {} {labels} {v}", e.name),
                    MetricValue::Histogram(h) => {
                        let buckets = if h.buckets.is_empty() {
                            "-".to_string()
                        } else {
                            h.buckets
                                .iter()
                                .map(|(i, n)| format!("{i}:{n}"))
                                .collect::<Vec<_>>()
                                .join(",")
                        };
                        format!(
                            "METRIC h {} {labels} {} {} {buckets}",
                            e.name, h.count, h.sum
                        )
                    }
                }
            })
            .collect()
    }

    /// Parses one line of the machine form; `None` for anything that is
    /// not a well-formed `METRIC` line (harnesses skip such lines).
    pub fn parse_line(line: &str) -> Option<SnapshotEntry> {
        let fields: Vec<&str> = line.split_whitespace().collect();
        let (tag, name, labels, rest) = match fields.as_slice() {
            ["METRIC", tag, name, labels, rest @ ..] => (*tag, *name, *labels, rest),
            _ => return None,
        };
        if name.is_empty() {
            return None;
        }
        let labels = Self::parse_labels(labels)?;
        let value = match (MetricKind::from_tag(tag)?, rest) {
            (MetricKind::Counter, [v]) => MetricValue::Counter(v.parse().ok()?),
            (MetricKind::Gauge, [v]) => MetricValue::Gauge(v.parse().ok()?),
            (MetricKind::Histogram, [count, sum, buckets]) => {
                MetricValue::Histogram(HistogramData {
                    count: count.parse().ok()?,
                    sum: sum.parse().ok()?,
                    buckets: Self::parse_buckets(buckets)?,
                })
            }
            _ => return None,
        };
        Some(SnapshotEntry {
            name: name.to_string(),
            labels,
            value,
        })
    }

    fn parse_labels(field: &str) -> Option<Vec<(String, String)>> {
        if field == "-" {
            return Some(Vec::new());
        }
        field
            .split(';')
            .map(|pair| {
                let (k, v) = pair.split_once('=')?;
                (!k.is_empty()).then(|| (k.to_string(), v.to_string()))
            })
            .collect()
    }

    fn parse_buckets(field: &str) -> Option<Vec<(u8, u64)>> {
        if field == "-" {
            return Some(Vec::new());
        }
        field
            .split(',')
            .map(|pair| {
                let (i, n) = pair.split_once(':')?;
                Some((i.parse().ok()?, n.parse().ok()?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_entry(name: &str, v: u64) -> SnapshotEntry {
        SnapshotEntry {
            name: name.to_string(),
            labels: Vec::new(),
            value: MetricValue::Counter(v),
        }
    }

    #[test]
    fn merge_adds_and_keeps_canonical_order() {
        let mut a = Snapshot::new();
        a.add_entry(counter_entry("z", 1));
        a.add_entry(counter_entry("a", 2));
        let mut b = Snapshot::new();
        b.add_entry(counter_entry("a", 3));
        b.add_entry(counter_entry("m", 4));
        a.merge(&b);
        let names: Vec<&str> = a.entries().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a", "m", "z"]);
        assert_eq!(a.counter("a"), 5);
    }

    #[test]
    fn lines_round_trip() {
        let mut s = Snapshot::new();
        s.add_entry(counter_entry("suite_cache_hits", 42));
        s.add_entry(SnapshotEntry {
            name: "tcp_frames_sent".to_string(),
            labels: vec![("kind".to_string(), "msg".to_string())],
            value: MetricValue::Counter(7),
        });
        s.add_entry(SnapshotEntry {
            name: "node_round_duration_us".to_string(),
            labels: Vec::new(),
            value: MetricValue::Histogram(HistogramData {
                count: 3,
                sum: 900,
                buckets: vec![(8, 2), (9, 1)],
            }),
        });
        let mut folded = Snapshot::new();
        for line in s.to_lines() {
            folded.add_entry(Snapshot::parse_line(&line).expect("line parses"));
        }
        assert_eq!(folded, s);
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let mut s = Snapshot::new();
        s.add_entry(counter_entry("tcp_redial_attempts", 3));
        let text = s.render();
        assert!(text.contains("# TYPE tcp_redial_attempts counter"));
        assert!(text.contains("tcp_redial_attempts 3"));
    }

    #[test]
    fn junk_lines_do_not_parse() {
        assert!(Snapshot::parse_line("OUTCOME decided 3 2").is_none());
        assert!(Snapshot::parse_line("METRIC c").is_none());
        assert!(Snapshot::parse_line("METRIC x name - 1").is_none());
        assert!(Snapshot::parse_line("METRIC c name - notanumber").is_none());
        assert!(Snapshot::parse_line("METRIC h name - 1 2 3-4").is_none());
    }
}
