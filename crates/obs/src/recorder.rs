//! The structured-event layer: the [`Recorder`] trait, span-style RAII
//! timing guards, and the bounded [`RingSink`].
//!
//! Events are tiny `Copy` records (static strings + integers — nothing
//! allocates on the hot path). When instrumentation is disabled the
//! global recorder is effectively no-op: [`record`] and
//! [`Span::start`] each cost one relaxed atomic load and nothing else —
//! a disabled span never takes a timestamp.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::metrics::Histogram;

/// One structured event: a subsystem, a name, and two free integer
/// slots. `Copy`, allocation-free, and sized for a ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The emitting subsystem (`"pool"`, `"tcp"`, `"suite"`, …).
    pub target: &'static str,
    /// What happened (`"round"`, `"redial"`, `"cell"`, …).
    pub name: &'static str,
    /// Elapsed microseconds for span events, `None` for point events.
    pub duration_us: Option<u64>,
    /// A free detail slot (round number, peer id, attempt count, …).
    pub detail: u64,
}

impl Event {
    /// A point event with no duration.
    pub fn point(target: &'static str, name: &'static str, detail: u64) -> Event {
        Event {
            target,
            name,
            duration_us: None,
            detail,
        }
    }
}

/// A sink for structured events.
///
/// ```
/// use setagree_obs::{Event, Recorder, RingSink};
///
/// let sink = RingSink::new(2);
/// sink.record(&Event::point("tcp", "redial", 1));
/// sink.record(&Event::point("tcp", "redial", 2));
/// sink.record(&Event::point("tcp", "redial", 3)); // evicts the oldest
/// let drained = sink.drain();
/// assert_eq!(drained.len(), 2);
/// assert_eq!(drained[0].detail, 2);
/// ```
pub trait Recorder: Send + Sync {
    /// Accepts one event. Must be cheap and must never block for long —
    /// it is called from protocol hot paths.
    fn record(&self, event: &Event);
}

/// The recorder that drops everything (the default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _event: &Event) {}
}

/// A bounded ring buffer of the most recent events: new events evict
/// the oldest once `capacity` is reached, so a long-running process
/// keeps a fixed-size tail of its history.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    dropped: AtomicUsize,
    events: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            capacity,
            dropped: AtomicUsize::new(0),
            events: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Takes every buffered event, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        events.drain(..).collect()
    }

    /// How many events were evicted to make room since creation.
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Recorder for RingSink {
    fn record(&self, event: &Event) {
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(*event);
    }
}

fn global_recorder() -> &'static RwLock<Arc<dyn Recorder>> {
    static RECORDER: OnceLock<RwLock<Arc<dyn Recorder>>> = OnceLock::new();
    RECORDER.get_or_init(|| RwLock::new(Arc::new(NoopRecorder)))
}

/// Installs the process-wide recorder (e.g. an `Arc<RingSink>` the
/// caller keeps a handle to for draining).
pub fn set_recorder(recorder: Arc<dyn Recorder>) {
    *global_recorder().write().unwrap_or_else(|e| e.into_inner()) = recorder;
}

/// The currently installed recorder.
pub fn recorder() -> Arc<dyn Recorder> {
    Arc::clone(&global_recorder().read().unwrap_or_else(|e| e.into_inner()))
}

/// Sends `event` to the installed recorder — if instrumentation is
/// enabled. Disabled cost: one relaxed atomic load.
#[inline]
pub fn record(event: Event) {
    if crate::enabled() {
        global_recorder()
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .record(&event);
    }
}

/// An RAII timing guard: measures from [`Span::start`] to drop, then
/// records the elapsed microseconds into an optional histogram and
/// emits a span [`Event`].
///
/// When instrumentation is disabled at `start`, the span holds no
/// timestamp and its drop does nothing — the whole span costs one
/// relaxed atomic load.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    target: &'static str,
    name: &'static str,
    detail: u64,
    start: Option<Instant>,
    histogram: Option<Arc<Histogram>>,
}

impl Span {
    /// Starts a span (takes a timestamp only when enabled).
    #[inline]
    pub fn start(target: &'static str, name: &'static str) -> Span {
        Span {
            target,
            name,
            detail: 0,
            start: crate::enabled().then(Instant::now),
            histogram: None,
        }
    }

    /// Routes the elapsed microseconds into `histogram` at drop.
    pub fn with_histogram(mut self, histogram: Arc<Histogram>) -> Span {
        if self.start.is_some() {
            self.histogram = Some(histogram);
        }
        self
    }

    /// Sets the event's free detail slot (round number, cell index, …).
    pub fn with_detail(mut self, detail: u64) -> Span {
        self.detail = detail;
        self
    }

    /// Elapsed microseconds so far (`None` when the span is disabled).
    pub fn elapsed_us(&self) -> Option<u64> {
        self.start
            .map(|s| u64::try_from(s.elapsed().as_micros()).unwrap_or(u64::MAX))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(us) = self.elapsed_us() else {
            return;
        };
        if let Some(h) = &self.histogram {
            h.record(us);
        }
        record(Event {
            target: self.target,
            name: self.name,
            duration_us: Some(us),
            detail: self.detail,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_fifo() {
        let ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(&Event::point("t", "e", i));
        }
        assert_eq!(ring.dropped(), 2);
        let details: Vec<u64> = ring.drain().iter().map(|e| e.detail).collect();
        assert_eq!(details, [2, 3, 4]);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn disabled_spans_take_no_timestamp() {
        crate::set_enabled(false);
        let span = Span::start("test", "noop");
        assert!(span.elapsed_us().is_none());
    }

    #[test]
    fn enabled_spans_feed_their_histogram() {
        crate::set_enabled(true);
        let h = Arc::new(Histogram::new());
        {
            let _span = Span::start("test", "timed").with_histogram(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
        crate::set_enabled(false);
    }
}
