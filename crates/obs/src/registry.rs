//! The metrics [`Registry`]: named + labeled handles over the atomic
//! primitives, and the process-wide [`global`] instance.
//!
//! Creation takes a short-held lock (a `BTreeMap` keyed by
//! `(name, labels, kind)`); recording through a handle never does —
//! handles are `Arc`s around atomics. Instrumented modules fetch their
//! handles once (typically into a `OnceLock`'d struct) and record
//! lock-free from then on.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{MetricKind, MetricValue, Snapshot, SnapshotEntry};

type Key = (String, Vec<(String, String)>, MetricKind);

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A set of named, labeled metrics that freezes into a [`Snapshot`].
///
/// ```
/// use setagree_obs::Registry;
///
/// let registry = Registry::new();
/// let sent = registry.counter("tcp_frames_sent", &[("kind", "msg")]);
/// sent.add(3);
/// // The same (name, labels) pair always yields the same handle:
/// registry.counter("tcp_frames_sent", &[("kind", "msg")]).inc();
/// assert_eq!(sent.get(), 4);
/// assert!(registry.snapshot().render().contains("tcp_frames_sent{kind=\"msg\"} 4"));
/// ```
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<Key, Handle>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn key(name: &str, labels: &[(&str, &str)], kind: MetricKind) -> Key {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        (name.to_string(), labels, kind)
    }

    /// The counter registered under `(name, labels)`, created at zero
    /// on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = Self::key(name, labels, MetricKind::Counter);
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(key)
            .or_insert_with(|| Handle::Counter(Arc::new(Counter::new())))
        {
            Handle::Counter(c) => Arc::clone(c),
            // The kind is part of the key, so the arms always agree.
            _ => unreachable!("kind mismatch despite keyed lookup"),
        }
    }

    /// The gauge registered under `(name, labels)`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = Self::key(name, labels, MetricKind::Gauge);
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(key)
            .or_insert_with(|| Handle::Gauge(Arc::new(Gauge::new())))
        {
            Handle::Gauge(g) => Arc::clone(g),
            _ => unreachable!("kind mismatch despite keyed lookup"),
        }
    }

    /// The histogram registered under `(name, labels)`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = Self::key(name, labels, MetricKind::Histogram);
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(key)
            .or_insert_with(|| Handle::Histogram(Arc::new(Histogram::new())))
        {
            Handle::Histogram(h) => Arc::clone(h),
            _ => unreachable!("kind mismatch despite keyed lookup"),
        }
    }

    /// Freezes every registered metric into a canonical [`Snapshot`].
    /// Empty histograms are skipped (they render nothing useful and
    /// would bloat child snapshot lines).
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut snapshot = Snapshot::new();
        for ((name, labels, _), handle) in map.iter() {
            let value = match handle {
                Handle::Counter(c) => MetricValue::Counter(c.get()),
                Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                Handle::Histogram(h) => {
                    let data = h.data();
                    if data.count == 0 {
                        continue;
                    }
                    MetricValue::Histogram(data)
                }
            };
            snapshot.add_entry(SnapshotEntry {
                name: name.clone(),
                labels: labels.clone(),
                value,
            });
        }
        snapshot
    }
}

/// The process-wide registry all the convenience functions use.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// [`Registry::counter`] on the [`global`] registry.
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    global().counter(name, labels)
}

/// [`Registry::gauge`] on the [`global`] registry.
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    global().gauge(name, labels)
}

/// [`Registry::histogram`] on the [`global`] registry.
pub fn histogram(name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
    global().histogram(name, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_key() {
        let r = Registry::new();
        r.counter("hits", &[]).add(2);
        r.counter("hits", &[]).add(3);
        assert_eq!(r.counter("hits", &[]).get(), 5);
        r.counter("hits", &[("shard", "0")]).inc();
        assert_eq!(r.counter("hits", &[("shard", "0")]).get(), 1);
    }

    #[test]
    fn label_order_does_not_split_handles() {
        let r = Registry::new();
        r.counter("x", &[("a", "1"), ("b", "2")]).inc();
        r.counter("x", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(r.counter("x", &[("a", "1"), ("b", "2")]).get(), 2);
    }

    #[test]
    fn empty_histograms_are_skipped() {
        let r = Registry::new();
        let _ = r.histogram("quiet", &[]);
        assert!(r.snapshot().is_empty());
        r.histogram("quiet", &[]).record(1);
        assert_eq!(r.snapshot().entries().len(), 1);
    }
}
