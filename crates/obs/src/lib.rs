//! Lock-light observability for every execution tier: a metrics
//! registry of atomic [`Counter`]s / [`Gauge`]s / fixed-log-bucket
//! [`Histogram`]s, mergeable [`Snapshot`]s with a Prometheus-style text
//! rendering, and a structured-event layer (the [`Recorder`] trait,
//! span-style RAII timing guards, a bounded [`RingSink`]).
//!
//! The crate depends only on `std` — consistent with the offline
//! vendored build — so any crate in the workspace can instrument
//! itself without a dependency cycle.
//!
//! # The enablement gate
//!
//! All instrumentation is **off by default**. Every instrumented hot
//! path guards its work behind [`enabled()`] — a single relaxed atomic
//! load — so a disabled build takes no timestamps, allocates nothing,
//! and touches no shared cache lines beyond that one load. Flip it with
//! [`set_enabled`] or [`init_from_env`] (which honours
//! `SETAGREE_METRICS=<path|->`).
//!
//! # Quickstart
//!
//! ```
//! use setagree_obs as obs;
//!
//! obs::set_enabled(true);
//! let hits = obs::counter("suite_cache_hits", &[]);
//! hits.inc();
//! let latency = obs::histogram("suite_cell_latency_us", &[]);
//! latency.record(180);
//!
//! let snapshot = obs::global().snapshot();
//! assert!(snapshot.render().contains("suite_cache_hits 1"));
//!
//! // Snapshots merge (counters add, histograms add bucket-wise), so a
//! // harness can fold many children into one aggregated report:
//! let mut total = snapshot.clone();
//! total.merge(&snapshot);
//! assert!(total.render().contains("suite_cache_hits 2"));
//! # obs::set_enabled(false);
//! ```

mod metrics;
mod recorder;
mod registry;
mod snapshot;

pub use metrics::{bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, BUCKETS};
pub use recorder::{record, recorder, set_recorder, Event, NoopRecorder, Recorder, RingSink, Span};
pub use registry::{counter, gauge, global, histogram, Registry};
pub use snapshot::{HistogramData, MetricKind, MetricValue, Snapshot, SnapshotEntry};

use std::sync::atomic::{AtomicBool, Ordering};

/// The global enablement flag every instrumentation site checks first.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is live. One relaxed atomic load — this is
/// the entire hot-path cost of a disabled build.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns instrumentation on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Reads `SETAGREE_METRICS`; when set, enables instrumentation and
/// returns the dump target (`-` conventionally means "print to the
/// standard stream at exit", anything else is a file path).
pub fn init_from_env() -> Option<String> {
    let target = std::env::var("SETAGREE_METRICS").ok()?;
    if target.is_empty() {
        return None;
    }
    set_enabled(true);
    Some(target)
}

/// Writes a snapshot's rendering to the dump `target`: `-` to stderr,
/// anything else as a file path (created or truncated).
///
/// # Errors
///
/// Propagates the underlying I/O error when the target is a path.
pub fn dump(target: &str, snapshot: &Snapshot) -> std::io::Result<()> {
    if target == "-" {
        eprint!("{}", snapshot.render());
        Ok(())
    } else {
        std::fs::write(target, snapshot.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_gate_is_off_by_default_and_flips() {
        // Other tests may race on the global flag, so only assert the
        // transitions we drive ourselves.
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
    }
}
