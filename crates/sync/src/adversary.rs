//! The crash adversary: explicit, replayable failure patterns.
//!
//! A [`FailurePattern`] assigns to each faulty process the round in which
//! it crashes and how far through its ordered send phase it got
//! ([`CrashSpec`]). Patterns are plain data: the same pattern replayed on
//! the same protocol yields the same execution, which is what lets the
//! test-suite enumerate the adversarial scenarios used in the paper's
//! proofs (initial crashes, crashes mid-send, the staircase of `k` crashes
//! per round from the agreement proof of Theorem 12).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use setagree_types::{ProcessId, ProcessSet};

/// When and how a process crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CrashSpec {
    /// The round (1-based) during whose send phase the process crashes.
    pub round: usize,
    /// How many sends of that round are delivered before the crash: the
    /// message reaches processes `p_1, …, p_{after_sends}` only.
    ///
    /// `0` in round 1 models an *initial* crash (the process "did not take
    /// any step": its entry of the input vector stays `⊥` in every view).
    pub after_sends: usize,
}

impl CrashSpec {
    /// Crash during `round` after delivering to the first `after_sends`
    /// processes.
    pub const fn new(round: usize, after_sends: usize) -> Self {
        CrashSpec { round, after_sends }
    }

    /// An initial crash: the process never takes a step.
    pub const fn initial() -> Self {
        CrashSpec {
            round: 1,
            after_sends: 0,
        }
    }
}

/// Error building a [`FailurePattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatternError {
    /// The crash round must be at least 1.
    ZeroRound {
        /// The offending process.
        process: ProcessId,
    },
    /// `after_sends` may not exceed the number of processes.
    PrefixTooLong {
        /// The offending process.
        process: ProcessId,
        /// The requested prefix length.
        after_sends: usize,
        /// The system size.
        n: usize,
    },
    /// The process id is outside the system.
    UnknownProcess {
        /// The offending process.
        process: ProcessId,
        /// The system size.
        n: usize,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::ZeroRound { process } => {
                write!(f, "{process} cannot crash in round 0 (rounds are 1-based)")
            }
            PatternError::PrefixTooLong {
                process,
                after_sends,
                n,
            } => write!(
                f,
                "{process} cannot deliver {after_sends} sends in a system of {n} processes"
            ),
            PatternError::UnknownProcess { process, n } => {
                write!(f, "{process} is not a process of a system of size {n}")
            }
        }
    }
}

impl Error for PatternError {}

/// A complete crash schedule for one execution.
///
/// # Example
///
/// ```
/// use setagree_sync::{CrashSpec, FailurePattern};
/// use setagree_types::{ProcessId, ProcessSet};
///
/// // p3 crashes initially; p1 crashes in round 2 after reaching only p1 itself.
/// let mut pattern = FailurePattern::none(4);
/// pattern.crash(ProcessId::new(2), CrashSpec::initial())?;
/// pattern.crash(ProcessId::new(0), CrashSpec::new(2, 1))?;
/// assert_eq!(pattern.fault_count(), 2);
/// # Ok::<(), setagree_sync::PatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FailurePattern {
    n: usize,
    crashes: BTreeMap<ProcessId, CrashSpec>,
}

impl FailurePattern {
    /// The failure-free pattern over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn none(n: usize) -> Self {
        assert!(n > 0, "a system needs at least one process");
        FailurePattern {
            n,
            crashes: BTreeMap::new(),
        }
    }

    /// The system size `n`.
    pub fn system_size(&self) -> usize {
        self.n
    }

    /// Schedules a crash, replacing any previous spec for the process.
    ///
    /// # Errors
    ///
    /// Rejects zero rounds, prefixes longer than `n`, and foreign ids.
    pub fn crash(&mut self, id: ProcessId, spec: CrashSpec) -> Result<(), PatternError> {
        if id.index() >= self.n {
            return Err(PatternError::UnknownProcess {
                process: id,
                n: self.n,
            });
        }
        if spec.round == 0 {
            return Err(PatternError::ZeroRound { process: id });
        }
        if spec.after_sends > self.n {
            return Err(PatternError::PrefixTooLong {
                process: id,
                after_sends: spec.after_sends,
                n: self.n,
            });
        }
        self.crashes.insert(id, spec);
        Ok(())
    }

    /// The number of faulty processes (`f` in the paper).
    pub fn fault_count(&self) -> usize {
        self.crashes.len()
    }

    /// The crash spec of a process, if it is faulty.
    pub fn spec(&self, id: ProcessId) -> Option<CrashSpec> {
        self.crashes.get(&id).copied()
    }

    /// Iterates over `(process, spec)` pairs in process order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, CrashSpec)> + '_ {
        self.crashes.iter().map(|(&id, &spec)| (id, spec))
    }

    /// The number of processes that crash **initially** (round 1, before
    /// any send) — the quantity compared against `t − d` in Lemma 2.
    pub fn initial_crash_count(&self) -> usize {
        self.crashes
            .values()
            .filter(|s| s.round == 1 && s.after_sends == 0)
            .count()
    }

    /// The number of crashes in rounds `≤ round`.
    pub fn crashes_by_round(&self, round: usize) -> usize {
        self.crashes.values().filter(|s| s.round <= round).count()
    }

    /// Initial crashes of the given processes (they never take a step).
    ///
    /// # Errors
    ///
    /// Propagates [`PatternError::UnknownProcess`].
    pub fn initial(
        n: usize,
        ids: impl IntoIterator<Item = ProcessId>,
    ) -> Result<Self, PatternError> {
        let mut pattern = FailurePattern::none(n);
        for id in ids {
            pattern.crash(id, CrashSpec::initial())?;
        }
        Ok(pattern)
    }

    /// The *staircase* adversary from the agreement lower-bound argument
    /// (proof of Theorem 12): `per_round` crashes in every round, each
    /// crasher delivering a distinct prefix of its sends, keeping the
    /// number of distinct states as high as possible. Crashes processes
    /// `p_n, p_{n-1}, …` until `budget` crashes are scheduled.
    ///
    /// # Panics
    ///
    /// Panics if `budget ≥ n` (someone must survive) or `per_round == 0`.
    pub fn staircase(n: usize, budget: usize, per_round: usize) -> Self {
        assert!(budget < n, "at least one process must survive");
        assert!(per_round > 0, "per_round must be positive");
        let mut pattern = FailurePattern::none(n);
        let mut victim = n;
        let mut scheduled = 0;
        let mut round = 1;
        while scheduled < budget {
            for slot in 0..per_round {
                if scheduled == budget {
                    break;
                }
                victim -= 1;
                // Distinct prefixes within a round maximize distinct views.
                let prefix = (slot * n) / per_round.max(1);
                pattern
                    .crash(ProcessId::new(victim), CrashSpec::new(round, prefix.min(n)))
                    .expect("victim < n and prefix ≤ n by construction");
                scheduled += 1;
            }
            round += 1;
        }
        pattern
    }

    /// The classic *chain* adversary behind the `t + 1` consensus lower
    /// bound (Fischer–Lynch / Aguilera–Toueg): in round `r`, the carrier
    /// of the hidden extremal value crashes after whispering it to exactly
    /// one fresh process — the next carrier. After `t` rounds of this, one
    /// round of honest flooding remains necessary; any protocol deciding
    /// earlier splits.
    ///
    /// The hidden value starts at `p_1`; the carriers in round `r` are
    /// `p_1, p_2, …` in order; each crashes delivering only to its
    /// successor (prefix `r + 1` reaches exactly `p_1..p_{r+1}`, all of
    /// which crashed except the successor).
    ///
    /// # Panics
    ///
    /// Panics if `t ≥ n` (someone must survive).
    pub fn chain(n: usize, t: usize) -> Self {
        assert!(t < n, "at least one process must survive");
        let mut pattern = FailurePattern::none(n);
        for r in 1..=t {
            // Carrier p_r crashes in round r reaching p_1..p_{r+1}: the
            // only *alive* recipient is p_{r+1}, the next carrier.
            pattern
                .crash(ProcessId::new(r - 1), CrashSpec::new(r, (r + 1).min(n)))
                .expect("r − 1 < t < n and prefix ≤ n");
        }
        pattern
    }

    /// A uniformly random pattern: chooses between 0 and `max_faults`
    /// victims, each with a crash round in `1..=max_round` and a uniform
    /// send prefix. Deterministic given the RNG state — log the seed to
    /// replay.
    ///
    /// # Panics
    ///
    /// Panics if `max_faults >= n`.
    pub fn random<R: Rng + ?Sized>(
        n: usize,
        max_faults: usize,
        max_round: usize,
        rng: &mut R,
    ) -> Self {
        assert!(max_faults < n, "at least one process must survive");
        let f = rng.gen_range(0..=max_faults);
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(rng);
        let mut pattern = FailurePattern::none(n);
        for &idx in ids.iter().take(f) {
            let round = rng.gen_range(1..=max_round.max(1));
            let after_sends = rng.gen_range(0..=n);
            pattern
                .crash(ProcessId::new(idx), CrashSpec::new(round, after_sends))
                .expect("generated specs are valid");
        }
        pattern
    }
}

/// A crash that loses an **arbitrary subset** of the crash-round
/// broadcast — the standard synchronous model, used by the ablation runs
/// (see [`run_protocol_unordered`](crate::engine::run_protocol_unordered)).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubsetCrash {
    /// The crash round (1-based).
    pub round: usize,
    /// Exactly which processes receive the crash-round broadcast.
    pub delivered_to: ProcessSet,
}

impl SubsetCrash {
    /// Crash during `round`, delivering that round's broadcast to exactly
    /// the given recipients.
    pub fn new(round: usize, delivered_to: ProcessSet) -> Self {
        SubsetCrash {
            round,
            delivered_to,
        }
    }
}

/// A crash schedule in the standard model: each faulty process loses an
/// arbitrary subset of its crash-round broadcast. Unlike
/// [`FailurePattern`], round-1 views under this adversary are **not**
/// totally ordered by containment.
///
/// # Example
///
/// ```
/// use setagree_sync::{SubsetCrash, UnorderedFailurePattern};
/// use setagree_types::{ProcessId, ProcessSet};
///
/// let mut delivered = ProcessSet::empty(4);
/// delivered.insert(ProcessId::new(2)); // reaches only p3
/// let mut pattern = UnorderedFailurePattern::none(4);
/// pattern.crash(ProcessId::new(0), SubsetCrash::new(1, delivered))?;
/// assert_eq!(pattern.fault_count(), 1);
/// # Ok::<(), setagree_sync::PatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UnorderedFailurePattern {
    n: usize,
    crashes: BTreeMap<ProcessId, SubsetCrash>,
}

impl UnorderedFailurePattern {
    /// The failure-free pattern over `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn none(n: usize) -> Self {
        assert!(n > 0, "a system needs at least one process");
        UnorderedFailurePattern {
            n,
            crashes: BTreeMap::new(),
        }
    }

    /// The system size `n`.
    pub fn system_size(&self) -> usize {
        self.n
    }

    /// Schedules a crash, replacing any previous spec for the process.
    ///
    /// # Errors
    ///
    /// Rejects zero rounds, recipient sets over the wrong universe, and
    /// foreign ids.
    pub fn crash(&mut self, id: ProcessId, spec: SubsetCrash) -> Result<(), PatternError> {
        if id.index() >= self.n {
            return Err(PatternError::UnknownProcess {
                process: id,
                n: self.n,
            });
        }
        if spec.round == 0 {
            return Err(PatternError::ZeroRound { process: id });
        }
        if spec.delivered_to.universe() != self.n {
            return Err(PatternError::PrefixTooLong {
                process: id,
                after_sends: spec.delivered_to.universe(),
                n: self.n,
            });
        }
        self.crashes.insert(id, spec);
        Ok(())
    }

    /// The number of faulty processes.
    pub fn fault_count(&self) -> usize {
        self.crashes.len()
    }

    /// The crash spec of a process, if it is faulty.
    pub fn spec(&self, id: ProcessId) -> Option<&SubsetCrash> {
        self.crashes.get(&id)
    }
}

impl From<&FailurePattern> for UnorderedFailurePattern {
    /// Every ordered pattern is also expressible in the standard model:
    /// the prefix becomes the delivered set.
    fn from(ordered: &FailurePattern) -> Self {
        let n = ordered.system_size();
        let mut unordered = UnorderedFailurePattern::none(n);
        for (id, spec) in ordered.iter() {
            let mut delivered = ProcessSet::empty(n);
            for r in 0..spec.after_sends.min(n) {
                delivered.insert(ProcessId::new(r));
            }
            unordered
                .crash(id, SubsetCrash::new(spec.round, delivered))
                .expect("ordered patterns are valid");
        }
        unordered
    }
}

impl fmt::Display for FailurePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.crashes.is_empty() {
            return write!(f, "no crashes (n = {})", self.n);
        }
        write!(f, "crashes (n = {}):", self.n)?;
        for (id, spec) in &self.crashes {
            write!(f, " {id}@r{}+{}", spec.round, spec.after_sends)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn none_has_no_faults() {
        let p = FailurePattern::none(5);
        assert_eq!(p.fault_count(), 0);
        assert_eq!(p.initial_crash_count(), 0);
        assert_eq!(p.spec(ProcessId::new(0)), None);
    }

    #[test]
    fn crash_validates_inputs() {
        let mut p = FailurePattern::none(3);
        assert!(matches!(
            p.crash(ProcessId::new(5), CrashSpec::initial()),
            Err(PatternError::UnknownProcess { .. })
        ));
        assert!(matches!(
            p.crash(ProcessId::new(0), CrashSpec::new(0, 0)),
            Err(PatternError::ZeroRound { .. })
        ));
        assert!(matches!(
            p.crash(ProcessId::new(0), CrashSpec::new(1, 4)),
            Err(PatternError::PrefixTooLong { .. })
        ));
        assert!(p.crash(ProcessId::new(0), CrashSpec::new(1, 3)).is_ok());
    }

    #[test]
    fn initial_counts_only_round_one_zero_prefix() {
        let mut p = FailurePattern::none(4);
        p.crash(ProcessId::new(0), CrashSpec::initial()).unwrap();
        p.crash(ProcessId::new(1), CrashSpec::new(1, 2)).unwrap();
        p.crash(ProcessId::new(2), CrashSpec::new(2, 0)).unwrap();
        assert_eq!(p.initial_crash_count(), 1);
        assert_eq!(p.fault_count(), 3);
        assert_eq!(p.crashes_by_round(1), 2);
        assert_eq!(p.crashes_by_round(2), 3);
    }

    #[test]
    fn initial_constructor() {
        let p = FailurePattern::initial(4, [ProcessId::new(1), ProcessId::new(3)]).unwrap();
        assert_eq!(p.initial_crash_count(), 2);
        assert_eq!(p.spec(ProcessId::new(1)), Some(CrashSpec::initial()));
    }

    #[test]
    fn staircase_schedules_per_round() {
        let p = FailurePattern::staircase(10, 6, 2);
        assert_eq!(p.fault_count(), 6);
        // Two crashes in each of rounds 1, 2, 3.
        for r in 1..=3 {
            assert_eq!(p.crashes_by_round(r), 2 * r);
        }
        // Victims are the highest process ids.
        assert!(p.spec(ProcessId::new(9)).is_some());
        assert!(p.spec(ProcessId::new(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "survive")]
    fn staircase_requires_survivor() {
        let _ = FailurePattern::staircase(4, 4, 1);
    }

    #[test]
    fn random_is_replayable_and_bounded() {
        let a = FailurePattern::random(8, 3, 4, &mut SmallRng::seed_from_u64(42));
        let b = FailurePattern::random(8, 3, 4, &mut SmallRng::seed_from_u64(42));
        assert_eq!(a, b, "same seed, same pattern");
        assert!(a.fault_count() <= 3);
        for (_, spec) in a.iter() {
            assert!((1..=4).contains(&spec.round));
            assert!(spec.after_sends <= 8);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(FailurePattern::none(3).to_string(), "no crashes (n = 3)");
        let mut p = FailurePattern::none(3);
        p.crash(ProcessId::new(1), CrashSpec::new(2, 1)).unwrap();
        assert_eq!(p.to_string(), "crashes (n = 3): p2@r2+1");
    }
}
