//! The protocol interface: what one process runs, round by round.

use std::fmt;

use setagree_types::ProcessId;

/// What a process does at the end of a round's compute phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step<Out> {
    /// Proceed to the next round.
    Continue,
    /// Decide the value and stop participating (the paper's `return v`).
    ///
    /// The decision takes effect *after* this round's send phase — exactly
    /// like line 13/14 of Figure 2, where a process forwards its state and
    /// then returns.
    Decide(Out),
}

impl<Out> Step<Out> {
    /// Returns the decided value, if any.
    pub fn decided(self) -> Option<Out> {
        match self {
            Step::Continue => None,
            Step::Decide(v) => Some(v),
        }
    }
}

impl<Out: fmt::Display> fmt::Display for Step<Out> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Continue => write!(f, "continue"),
            Step::Decide(v) => write!(f, "decide {v}"),
        }
    }
}

/// One process of a round-based synchronous protocol.
///
/// Each round the engine calls, in order:
///
/// 1. [`message`](SyncProtocol::message) — the broadcast payload for this
///    round (the model is broadcast-based: the same message goes to
///    `p_1, …, p_n` in that predetermined order, and a crash mid-send
///    delivers only a prefix);
/// 2. [`receive`](SyncProtocol::receive) — once per message delivered this
///    round, in sender order (a process always receives its own broadcast
///    unless it crashed before reaching itself in the send order);
/// 3. [`compute`](SyncProtocol::compute) — local computation; returning
///    [`Step::Decide`] ends the process's participation.
///
/// Rounds are numbered from 1, matching the paper.
///
/// Delivery is **zero-copy**: a broadcast produces one owned message per
/// sender per round, and every executor hands that same message to each
/// recipient by reference — the simulator delivers `n` borrows of the
/// sender's message, the threaded runtime fans one `Arc` out through the
/// channels. `Msg` therefore needs no `Clone` bound; a receiver that wants
/// to keep part of a message clones exactly the pieces it stores (or
/// merges them in place, e.g. `View::merge_from`).
pub trait SyncProtocol {
    /// The broadcast payload type.
    type Msg: fmt::Debug;
    /// The decision value type (ordered so traces can collect decided-value
    /// sets).
    type Output: Clone + Ord + fmt::Debug;

    /// The payload this process broadcasts in `round`.
    fn message(&mut self, round: usize) -> Self::Msg;

    /// Delivery of `msg` broadcast by `from` in `round`.
    ///
    /// The message is borrowed: all `n` recipients of a broadcast observe
    /// the same owned message. Clone only what the process keeps.
    fn receive(&mut self, round: usize, from: ProcessId, msg: &Self::Msg);

    /// End-of-round computation.
    fn compute(&mut self, round: usize) -> Step<Self::Output>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_decided_extracts_value() {
        assert_eq!(Step::Decide(7).decided(), Some(7));
        assert_eq!(Step::<u32>::Continue.decided(), None);
    }

    #[test]
    fn step_display() {
        assert_eq!(Step::Decide(7).to_string(), "decide 7");
        assert_eq!(Step::<u32>::Continue.to_string(), "continue");
    }
}
