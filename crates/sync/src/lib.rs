//! A deterministic synchronous round-based message-passing simulator with
//! crash failures — the computation model of Section 6.2 of Bonnet &
//! Raynal (ICDCS 2008).
//!
//! The model:
//!
//! * executions proceed in rounds `1, 2, …`; each round has a **send**
//!   phase, a **receive** phase and a **compute** phase;
//! * a message sent in round `r` is received in round `r` (synchrony);
//! * every process broadcasts in the predetermined order `p_1, …, p_n`;
//!   a process that crashes during its send phase delivers only a
//!   **prefix** of its sends — this ordered-send discipline is what gives
//!   round-1 views that are totally ordered by containment (the paper's
//!   departure from the standard model, discussed in Section 6.2);
//! * at most `t` processes crash; crashed processes take no further steps.
//!
//! Protocols implement [`SyncProtocol`]; the adversary is an explicit,
//! replayable [`FailurePattern`]; [`run_protocol`] executes the system and
//! returns a [`Trace`] recording who decided what and when.
//!
//! # Example
//!
//! ```
//! use setagree_sync::{run_protocol, FailurePattern, Step, SyncProtocol};
//! use setagree_types::ProcessId;
//!
//! /// A one-round protocol: everyone broadcasts its input and decides the max.
//! struct MaxOnce { input: u32, best: u32 }
//! impl SyncProtocol for MaxOnce {
//!     type Msg = u32;
//!     type Output = u32;
//!     fn message(&mut self, _round: usize) -> u32 { self.input }
//!     fn receive(&mut self, _round: usize, _from: ProcessId, msg: &u32) {
//!         self.best = self.best.max(*msg);
//!     }
//!     fn compute(&mut self, _round: usize) -> Step<u32> { Step::Decide(self.best) }
//! }
//!
//! let procs = (1..=4u32).map(|input| MaxOnce { input, best: 0 }).collect();
//! let trace = run_protocol(procs, &FailurePattern::none(4), 10).unwrap();
//! assert_eq!(trace.decided_values(), [4].into_iter().collect());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod adversary;
pub mod engine;
pub mod fault;
pub mod protocol;
pub mod trace;

pub use adversary::{
    CrashSpec, FailurePattern, PatternError, SubsetCrash, UnorderedFailurePattern,
};
pub use engine::{
    run_protocol, run_protocol_faulty, run_protocol_unordered, run_protocol_unordered_faulty,
    EngineError,
};
pub use fault::{FaultInbox, FaultPlan, LinkFault, Partition, RATE_SCALE};
pub use protocol::{Step, SyncProtocol};
pub use trace::{Outcome, Trace};
