//! Execution traces: what each process decided, and when.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use setagree_types::ProcessId;

/// The fate of one process in an execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome<Out> {
    /// The process decided `value` at the end of `round`.
    Decided {
        /// The decided value.
        value: Out,
        /// The (1-based) round of the decision.
        round: usize,
    },
    /// The process crashed during `round` without deciding.
    Crashed {
        /// The crash round.
        round: usize,
    },
    /// The execution hit the engine's round limit before the process
    /// decided — a termination bug in the protocol under test.
    Undecided,
}

impl<Out> Outcome<Out> {
    /// The decided value, if the process decided.
    pub fn decided_value(&self) -> Option<&Out> {
        match self {
            Outcome::Decided { value, .. } => Some(value),
            _ => None,
        }
    }

    /// The decision round, if the process decided.
    pub fn decision_round(&self) -> Option<usize> {
        match self {
            Outcome::Decided { round, .. } => Some(*round),
            _ => None,
        }
    }

    /// Returns `true` if the process crashed.
    pub fn is_crashed(&self) -> bool {
        matches!(self, Outcome::Crashed { .. })
    }
}

/// The result of one synchronous execution.
///
/// Agreement, validity and termination checks are methods here so tests and
/// benches interrogate executions uniformly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace<Out> {
    outcomes: Vec<Outcome<Out>>,
    rounds_executed: usize,
    messages_delivered: u64,
}

impl<Out: Clone + Ord> Trace<Out> {
    pub(crate) fn new(
        outcomes: Vec<Outcome<Out>>,
        rounds_executed: usize,
        messages_delivered: u64,
    ) -> Self {
        Trace {
            outcomes,
            rounds_executed,
            messages_delivered,
        }
    }

    /// Assembles a trace from parts. Intended for alternative executors
    /// (e.g. the thread-based runtime) that produce the same observable
    /// data as [`run_protocol`](crate::run_protocol); such executors can
    /// then be compared for equality against the simulator.
    pub fn from_parts(
        outcomes: Vec<Outcome<Out>>,
        rounds_executed: usize,
        messages_delivered: u64,
    ) -> Self {
        Trace::new(outcomes, rounds_executed, messages_delivered)
    }

    /// The per-process outcomes, indexed by process.
    pub fn outcomes(&self) -> &[Outcome<Out>] {
        &self.outcomes
    }

    /// The outcome of one process.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of this system.
    pub fn outcome(&self, id: ProcessId) -> &Outcome<Out> {
        &self.outcomes[id.index()]
    }

    /// The number of rounds the engine executed before everyone decided or
    /// crashed.
    pub fn rounds_executed(&self) -> usize {
        self.rounds_executed
    }

    /// The total number of message deliveries.
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// The set of distinct decided values — agreement for k-set agreement
    /// means `decided_values().len() ≤ k`.
    pub fn decided_values(&self) -> BTreeSet<Out> {
        self.outcomes
            .iter()
            .filter_map(|o| o.decided_value().cloned())
            .collect()
    }

    /// The latest decision round among deciders, or `None` if nobody
    /// decided.
    pub fn last_decision_round(&self) -> Option<usize> {
        self.outcomes
            .iter()
            .filter_map(|o| o.decision_round())
            .max()
    }

    /// The earliest decision round, or `None`.
    pub fn first_decision_round(&self) -> Option<usize> {
        self.outcomes
            .iter()
            .filter_map(|o| o.decision_round())
            .min()
    }

    /// Returns `true` if every non-crashed process decided (the paper's
    /// termination property).
    pub fn all_correct_decided(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| !matches!(o, Outcome::Undecided))
    }

    /// The number of processes that decided.
    pub fn decided_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.decided_value().is_some())
            .count()
    }

    /// The number of processes that crashed.
    pub fn crashed_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_crashed()).count()
    }
}

impl<Out: Clone + Ord + fmt::Debug> fmt::Display for Trace<Out> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} rounds, {} deliveries, {} decided / {} crashed",
            self.rounds_executed,
            self.messages_delivered,
            self.decided_count(),
            self.crashed_count()
        )?;
        for (i, o) in self.outcomes.iter().enumerate() {
            let id = ProcessId::new(i);
            match o {
                Outcome::Decided { value, round } => {
                    writeln!(f, "  {id}: decided {value:?} @ r{round}")?
                }
                Outcome::Crashed { round } => writeln!(f, "  {id}: crashed @ r{round}")?,
                Outcome::Undecided => writeln!(f, "  {id}: undecided")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace<u32> {
        Trace::new(
            vec![
                Outcome::Decided { value: 4, round: 2 },
                Outcome::Crashed { round: 1 },
                Outcome::Decided { value: 4, round: 3 },
                Outcome::Decided { value: 7, round: 2 },
            ],
            3,
            24,
        )
    }

    #[test]
    fn decided_values_deduplicates() {
        assert_eq!(sample().decided_values(), [4, 7].into_iter().collect());
    }

    #[test]
    fn rounds_and_counts() {
        let t = sample();
        assert_eq!(t.rounds_executed(), 3);
        assert_eq!(t.messages_delivered(), 24);
        assert_eq!(t.decided_count(), 3);
        assert_eq!(t.crashed_count(), 1);
        assert_eq!(t.first_decision_round(), Some(2));
        assert_eq!(t.last_decision_round(), Some(3));
        assert!(t.all_correct_decided());
    }

    #[test]
    fn undecided_marks_termination_failure() {
        let t: Trace<u32> = Trace::new(vec![Outcome::Undecided], 10, 0);
        assert!(!t.all_correct_decided());
        assert_eq!(t.last_decision_round(), None);
        assert_eq!(t.decided_values(), BTreeSet::new());
    }

    #[test]
    fn outcome_accessors() {
        let t = sample();
        assert_eq!(t.outcome(ProcessId::new(0)).decided_value(), Some(&4));
        assert_eq!(t.outcome(ProcessId::new(0)).decision_round(), Some(2));
        assert!(t.outcome(ProcessId::new(1)).is_crashed());
        assert_eq!(t.outcomes().len(), 4);
    }

    #[test]
    fn display_renders_every_process() {
        let s = sample().to_string();
        assert!(s.contains("p1: decided 4 @ r2"));
        assert!(s.contains("p2: crashed @ r1"));
    }
}
