//! Deterministic, seeded fault injection: the message adversary.
//!
//! A [`FaultPlan`] extends the crash adversary with *link* faults — per
//! (round, sender, receiver) decisions to **drop**, **delay** (by whole
//! rounds), or **duplicate** a message, plus per-(round, receiver)
//! inbox **reordering** and link **partitions** with scheduled heals.
//! Like a [`FailurePattern`](crate::FailurePattern), a plan is plain
//! data: every decision is a pure hash of `(seed, round, sender,
//! receiver)`, so the same plan replayed against the same protocol
//! yields the same execution on every tier that honours it — the
//! deterministic simulator and the loopback node mesh produce
//! byte-identical traces, and a TCP testnet injects the same drops at
//! its frame boundary.
//!
//! Faults never apply to self-delivery (`sender == receiver`): a
//! process's loopback of its own broadcast is reliable in every model.
//!
//! # Seeded reproducibility
//!
//! ```
//! use setagree_sync::{FaultPlan, LinkFault};
//! use setagree_types::ProcessId;
//!
//! let plan = FaultPlan::new(4, 0xFEED).drop_rate(2_500); // 25% of links
//! let again = FaultPlan::new(4, 0xFEED).drop_rate(2_500);
//! for round in 1..=3 {
//!     for s in 0..4 {
//!         for r in 0..4 {
//!             let (s, r) = (ProcessId::new(s), ProcessId::new(r));
//!             // Same seed → the same decision on every link, forever.
//!             assert_eq!(plan.decide(round, s, r), again.decide(round, s, r));
//!         }
//!     }
//! }
//! // A different seed draws a different (but equally replayable) plan.
//! let other = FaultPlan::new(4, 0xBEEF).drop_rate(2_500);
//! assert_eq!(other.decide(1, ProcessId::new(0), ProcessId::new(0)), LinkFault::Deliver);
//! ```

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use setagree_types::{ProcessId, ProcessSet};

/// Rates are parts-per-`RATE_SCALE`: a `drop_rate` of 2 500 drops 25 %
/// of links.
pub const RATE_SCALE: u32 = 10_000;

/// The fate of one (round, sender, receiver) link under a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkFault {
    /// The message arrives normally.
    Deliver,
    /// The message is lost (also the fate of every link a partition
    /// cuts).
    Drop,
    /// The message arrives `.0 ≥ 1` rounds late, ahead of that round's
    /// own arrivals.
    Delay(usize),
    /// The message arrives twice, back to back.
    Duplicate,
}

/// A scheduled link partition: messages crossing between `side` and its
/// complement are dropped for every round in `from_round..=to_round`,
/// after which the partition *heals* and the links carry again.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Partition {
    side: ProcessSet,
    from_round: usize,
    to_round: usize,
}

impl Partition {
    /// A partition isolating `side` from its complement during rounds
    /// `from_round..=to_round` (both 1-based, inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `from_round` is 0 or the range is empty — partitions
    /// are authored by experiment code, and a silently inert partition
    /// would be worse than a loud one.
    pub fn new(side: ProcessSet, from_round: usize, to_round: usize) -> Partition {
        assert!(from_round >= 1, "rounds are 1-based");
        assert!(from_round <= to_round, "empty partition round range");
        Partition {
            side,
            from_round,
            to_round,
        }
    }

    /// The isolated side.
    pub fn side(&self) -> &ProcessSet {
        &self.side
    }

    /// First partitioned round (1-based, inclusive).
    pub fn from_round(&self) -> usize {
        self.from_round
    }

    /// Last partitioned round (inclusive); the heal happens after it.
    pub fn to_round(&self) -> usize {
        self.to_round
    }

    /// Whether this partition cuts the `a → b` link in `round`.
    pub fn cuts(&self, round: usize, a: ProcessId, b: ProcessId) -> bool {
        round >= self.from_round
            && round <= self.to_round
            && self.side.contains(a) != self.side.contains(b)
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partition{{")?;
        for (i, p) in self.side.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", p.index())?;
        }
        write!(f, "}}@r{}-{}", self.from_round, self.to_round)
    }
}

/// A seeded, deterministic message-fault plan over `n` processes.
///
/// Construct with [`FaultPlan::new`] and the builder-style rate setters;
/// [`FaultPlan::none`] is the benign plan every fault-aware path must
/// realize identically to the plain one (pinned by
/// `tests/fault_equivalence.rs`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultPlan {
    n: usize,
    seed: u64,
    drop_rate: u32,
    delay_rate: u32,
    max_delay: usize,
    duplicate_rate: u32,
    reorder_rate: u32,
    partitions: Vec<Partition>,
}

impl FaultPlan {
    /// The benign plan: no link faults at all.
    pub fn none(n: usize) -> FaultPlan {
        FaultPlan::new(n, 0)
    }

    /// An empty plan over `n` processes drawing decisions from `seed`.
    pub fn new(n: usize, seed: u64) -> FaultPlan {
        FaultPlan {
            n,
            seed,
            drop_rate: 0,
            delay_rate: 0,
            max_delay: 1,
            duplicate_rate: 0,
            reorder_rate: 0,
            partitions: Vec::new(),
        }
    }

    /// Shorthand for the common omission sweep: drop `rate` per
    /// [`RATE_SCALE`] of links, nothing else.
    pub fn uniform_drop(n: usize, seed: u64, rate: u32) -> FaultPlan {
        FaultPlan::new(n, seed).drop_rate(rate)
    }

    /// Sets the drop rate (parts per [`RATE_SCALE`], clamped).
    pub fn drop_rate(mut self, rate: u32) -> FaultPlan {
        self.drop_rate = rate.min(RATE_SCALE);
        self
    }

    /// Sets the delay rate and the maximum delay in rounds (≥ 1).
    pub fn delay_rate(mut self, rate: u32, max_delay: usize) -> FaultPlan {
        self.delay_rate = rate.min(RATE_SCALE);
        self.max_delay = max_delay.max(1);
        self
    }

    /// Sets the duplication rate (parts per [`RATE_SCALE`], clamped).
    pub fn duplicate_rate(mut self, rate: u32) -> FaultPlan {
        self.duplicate_rate = rate.min(RATE_SCALE);
        self
    }

    /// Sets the per-(round, receiver) inbox reorder rate.
    pub fn reorder_rate(mut self, rate: u32) -> FaultPlan {
        self.reorder_rate = rate.min(RATE_SCALE);
        self
    }

    /// Adds a scheduled [`Partition`].
    pub fn partition(mut self, partition: Partition) -> FaultPlan {
        self.partitions.push(partition);
        self
    }

    /// The system size the plan is defined over.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The seed every decision is drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// A compact, deterministic summary for log lines, verdicts and
    /// metric attributions: `faults <seed>:<drop_rate>`, extended with
    /// the non-zero optional rates and the partition count.
    ///
    /// ```
    /// use setagree_sync::{FaultPlan, Partition};
    /// use setagree_types::ProcessSet;
    ///
    /// let plan = FaultPlan::uniform_drop(5, 51966, 1500)
    ///     .partition(Partition::new(ProcessSet::full(5), 1, 1));
    /// assert_eq!(plan.summary(), "faults 51966:1500 partitions:1");
    /// ```
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("faults {}:{}", self.seed, self.drop_rate);
        if self.delay_rate > 0 {
            let _ = write!(s, " delay:{}x{}", self.delay_rate, self.max_delay);
        }
        if self.duplicate_rate > 0 {
            let _ = write!(s, " dup:{}", self.duplicate_rate);
        }
        if self.reorder_rate > 0 {
            let _ = write!(s, " reorder:{}", self.reorder_rate);
        }
        if !self.partitions.is_empty() {
            let _ = write!(s, " partitions:{}", self.partitions.len());
        }
        s
    }

    /// `true` when the plan can never fault a link — such a plan is
    /// guaranteed to run trace-identical to the fault-free path.
    pub fn is_benign(&self) -> bool {
        self.drop_rate == 0
            && self.delay_rate == 0
            && self.duplicate_rate == 0
            && self.reorder_rate == 0
            && self.partitions.is_empty()
    }

    /// The fate of the `from → to` link in `round` — a pure function of
    /// the plan; both the simulator engine and the transport wrapper
    /// call exactly this.
    pub fn decide(&self, round: usize, from: ProcessId, to: ProcessId) -> LinkFault {
        if from == to {
            return LinkFault::Deliver;
        }
        if self.partitions.iter().any(|p| p.cuts(round, from, to)) {
            return LinkFault::Drop;
        }
        if self.drop_rate == 0 && self.delay_rate == 0 && self.duplicate_rate == 0 {
            return LinkFault::Deliver;
        }
        let mut stream = self.stream(&[1, round as u64, from.index() as u64, to.index() as u64]);
        let scale = u64::from(RATE_SCALE);
        let draw_drop = stream.next() % scale;
        let draw_delay = stream.next() % scale;
        let draw_amount = stream.next();
        let draw_dup = stream.next() % scale;
        if draw_drop < u64::from(self.drop_rate) {
            LinkFault::Drop
        } else if draw_delay < u64::from(self.delay_rate) {
            LinkFault::Delay(1 + (draw_amount % self.max_delay as u64) as usize)
        } else if draw_dup < u64::from(self.duplicate_rate) {
            LinkFault::Duplicate
        } else {
            LinkFault::Deliver
        }
    }

    /// Applies the plan's (round, receiver) reorder draw to an assembled
    /// inbox: a seeded Fisher–Yates shuffle when the draw fires, the
    /// identity otherwise.
    pub fn permute<T>(&self, round: usize, to: ProcessId, inbox: &mut [T]) {
        if self.reorder_rate == 0 || inbox.len() < 2 {
            return;
        }
        let mut stream = self.stream(&[2, round as u64, to.index() as u64]);
        if stream.next() % u64::from(RATE_SCALE) >= u64::from(self.reorder_rate) {
            return;
        }
        for i in (1..inbox.len()).rev() {
            let j = (stream.next() % (i as u64 + 1)) as usize;
            inbox.swap(i, j);
        }
    }

    /// A decision stream keyed by the plan's seed and the given salts.
    fn stream(&self, salts: &[u64]) -> DecisionStream {
        let mut state = splitmix(self.seed ^ 0x5E7A_6EE0_FA17_1B0B);
        for &salt in salts {
            state = splitmix(state ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        DecisionStream { state }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_benign() {
            return write!(f, "benign");
        }
        write!(f, "seed={:#x}", self.seed)?;
        if self.drop_rate > 0 {
            write!(f, " drop={}", self.drop_rate)?;
        }
        if self.delay_rate > 0 {
            write!(f, " delay={}≤{}r", self.delay_rate, self.max_delay)?;
        }
        if self.duplicate_rate > 0 {
            write!(f, " dup={}", self.duplicate_rate)?;
        }
        if self.reorder_rate > 0 {
            write!(f, " reorder={}", self.reorder_rate)?;
        }
        for p in &self.partitions {
            write!(f, " {p}")?;
        }
        Ok(())
    }
}

/// A splittable counter-based stream: no shared state, so any two tiers
/// that draw the same salts read the same sequence.
struct DecisionStream {
    state: u64,
}

impl DecisionStream {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix(self.state)
    }
}

/// The SplitMix64 finalizer: a bijective avalanche mix.
fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fault layer's metric handles. [`FaultInbox::assemble`] is the
/// single realization of the plan's delivery semantics for *both* the
/// simulator and the transport wrapper, so counting here covers every
/// tier: `fault_messages_dropped` / `fault_messages_delayed` /
/// `fault_messages_duplicated`.
struct FaultMetrics {
    dropped: std::sync::Arc<setagree_obs::Counter>,
    delayed: std::sync::Arc<setagree_obs::Counter>,
    duplicated: std::sync::Arc<setagree_obs::Counter>,
}

fn fault_metrics() -> &'static FaultMetrics {
    static METRICS: std::sync::OnceLock<FaultMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| FaultMetrics {
        dropped: setagree_obs::counter("fault_messages_dropped", &[]),
        delayed: setagree_obs::counter("fault_messages_delayed", &[]),
        duplicated: setagree_obs::counter("fault_messages_duplicated", &[]),
    })
}

/// One receiver's fault-plan bookkeeping: stashes delayed letters and
/// assembles each round's final inbox. This is the *single* realization
/// of the plan's delivery semantics — the simulator engine feeds it
/// `Rc`-shared messages, the transport wrapper feeds it letters — so the
/// two tiers cannot drift.
///
/// Inbox order is part of the contract: delayed letters first (sorted by
/// original round, then sender — the order they were stashed), then the
/// current round's arrivals in sender order with duplicates adjacent,
/// then the plan's reorder permutation over the whole assembly.
#[derive(Debug)]
pub struct FaultInbox<L> {
    plan: FaultPlan,
    me: ProcessId,
    /// `arrival round → (original round, sender, letter)`, in stash
    /// order (original round ascending, sender ascending within it).
    stash: BTreeMap<usize, Vec<(usize, ProcessId, L)>>,
}

impl<L: Clone> FaultInbox<L> {
    /// A fresh inbox for `me` under `plan`.
    pub fn new(plan: FaultPlan, me: ProcessId) -> FaultInbox<L> {
        FaultInbox {
            plan,
            me,
            stash: BTreeMap::new(),
        }
    }

    /// Runs round `round`'s raw arrivals (sorted by sender) through the
    /// plan and returns the final inbox plus the delivered-count
    /// adjustment: −1 per drop, +1 per duplicate (a delayed letter was
    /// already counted when its broadcast was accepted, so delays
    /// adjust nothing).
    pub fn assemble(
        &mut self,
        round: usize,
        arrivals: Vec<(ProcessId, L)>,
    ) -> (Vec<(ProcessId, L)>, i64) {
        let obs_on = setagree_obs::enabled();
        let mut adjust = 0i64;
        // Due (and, defensively, overdue) stashed letters lead the inbox.
        let mut inbox: Vec<(ProcessId, L)> = Vec::new();
        let due: Vec<usize> = self
            .stash
            .range(..=round)
            .map(|(&arrival, _)| arrival)
            .collect();
        for arrival in due {
            if let Some(letters) = self.stash.remove(&arrival) {
                inbox.extend(letters.into_iter().map(|(_, from, l)| (from, l)));
            }
        }
        for (from, letter) in arrivals {
            if from == self.me {
                inbox.push((from, letter));
                continue;
            }
            match self.plan.decide(round, from, self.me) {
                LinkFault::Deliver => inbox.push((from, letter)),
                LinkFault::Drop => {
                    adjust -= 1;
                    if obs_on {
                        fault_metrics().dropped.inc();
                    }
                }
                LinkFault::Duplicate => {
                    inbox.push((from, letter.clone()));
                    inbox.push((from, letter));
                    adjust += 1;
                    if obs_on {
                        fault_metrics().duplicated.inc();
                    }
                }
                LinkFault::Delay(by) => {
                    self.stash
                        .entry(round + by)
                        .or_default()
                        .push((round, from, letter));
                    if obs_on {
                        fault_metrics().delayed.inc();
                    }
                }
            }
        }
        self.plan.permute(round, self.me, &mut inbox);
        (inbox, adjust)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn benign_plan_delivers_everything() {
        let plan = FaultPlan::none(5);
        assert!(plan.is_benign());
        for round in 1..=4 {
            for s in 0..5 {
                for r in 0..5 {
                    assert_eq!(plan.decide(round, p(s), p(r)), LinkFault::Deliver);
                }
            }
        }
    }

    #[test]
    fn self_delivery_is_never_faulted() {
        let plan = FaultPlan::new(4, 7)
            .drop_rate(RATE_SCALE)
            .partition(Partition::new(ProcessSet::full(4), 1, 10));
        for round in 1..=10 {
            for i in 0..4 {
                assert_eq!(plan.decide(round, p(i), p(i)), LinkFault::Deliver);
            }
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(6, 0xAB).drop_rate(3000).duplicate_rate(2000);
        let b = FaultPlan::new(6, 0xAB).drop_rate(3000).duplicate_rate(2000);
        let c = FaultPlan::new(6, 0xCD).drop_rate(3000).duplicate_rate(2000);
        let mut differs = false;
        for round in 1..=6 {
            for s in 0..6 {
                for r in 0..6 {
                    assert_eq!(a.decide(round, p(s), p(r)), b.decide(round, p(s), p(r)));
                    differs |= a.decide(round, p(s), p(r)) != c.decide(round, p(s), p(r));
                }
            }
        }
        assert!(differs, "distinct seeds should draw distinct plans");
    }

    #[test]
    fn rates_roughly_hold() {
        let plan = FaultPlan::new(32, 42).drop_rate(RATE_SCALE / 2);
        let mut dropped = 0usize;
        let mut total = 0usize;
        for round in 1..=20 {
            for s in 0..32 {
                for r in 0..32 {
                    if s == r {
                        continue;
                    }
                    total += 1;
                    if plan.decide(round, p(s), p(r)) == LinkFault::Drop {
                        dropped += 1;
                    }
                }
            }
        }
        let fraction = dropped as f64 / total as f64;
        assert!(
            (0.45..0.55).contains(&fraction),
            "a 50% plan dropped {fraction:.3} of links"
        );
    }

    #[test]
    fn partitions_cut_exactly_the_scheduled_rounds() {
        let mut side = ProcessSet::empty(4);
        side.insert(p(0));
        side.insert(p(1));
        let plan = FaultPlan::new(4, 0).partition(Partition::new(side, 2, 3));
        // Within the window: cross-side links drop, same-side links carry.
        for round in 2..=3 {
            assert_eq!(plan.decide(round, p(0), p(2)), LinkFault::Drop);
            assert_eq!(plan.decide(round, p(3), p(1)), LinkFault::Drop);
            assert_eq!(plan.decide(round, p(0), p(1)), LinkFault::Deliver);
            assert_eq!(plan.decide(round, p(2), p(3)), LinkFault::Deliver);
        }
        // Before and after (the heal): everything carries.
        for round in [1, 4, 9] {
            for s in 0..4 {
                for r in 0..4 {
                    assert_eq!(plan.decide(round, p(s), p(r)), LinkFault::Deliver);
                }
            }
        }
    }

    #[test]
    fn delays_stay_within_bounds() {
        let plan = FaultPlan::new(8, 9).delay_rate(RATE_SCALE, 3);
        for round in 1..=5 {
            for s in 0..8 {
                for r in 0..8 {
                    if s == r {
                        continue;
                    }
                    match plan.decide(round, p(s), p(r)) {
                        LinkFault::Delay(by) => assert!((1..=3).contains(&by)),
                        other => panic!("a rate-10000 delay plan decided {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn inbox_assembly_orders_delayed_before_current() {
        let plan = FaultPlan::new(3, 0).delay_rate(RATE_SCALE, 1);
        let mut inbox: FaultInbox<u32> = FaultInbox::new(plan, p(0));
        // Round 1: both peer letters are delayed by exactly one round.
        let (got, adjust) = inbox.assemble(1, vec![(p(0), 10), (p(1), 11), (p(2), 12)]);
        assert_eq!(got, vec![(p(0), 10)]);
        assert_eq!(adjust, 0);
        // Round 2: the delayed letters lead, the new peer letters are
        // delayed again in turn.
        let (got, adjust) = inbox.assemble(2, vec![(p(0), 20), (p(1), 21), (p(2), 22)]);
        assert_eq!(got, vec![(p(1), 11), (p(2), 12), (p(0), 20)]);
        assert_eq!(adjust, 0);
    }

    #[test]
    fn inbox_assembly_counts_drops_and_duplicates() {
        let drops = FaultPlan::new(3, 0).drop_rate(RATE_SCALE);
        let mut inbox: FaultInbox<u32> = FaultInbox::new(drops, p(1));
        let (got, adjust) = inbox.assemble(1, vec![(p(0), 5), (p(1), 6), (p(2), 7)]);
        assert_eq!(
            got,
            vec![(p(1), 6)],
            "self-delivery survives a full drop plan"
        );
        assert_eq!(adjust, -2);

        let dups = FaultPlan::new(3, 0).duplicate_rate(RATE_SCALE);
        let mut inbox: FaultInbox<u32> = FaultInbox::new(dups, p(1));
        let (got, adjust) = inbox.assemble(1, vec![(p(0), 5), (p(1), 6), (p(2), 7)]);
        assert_eq!(
            got,
            vec![(p(0), 5), (p(0), 5), (p(1), 6), (p(2), 7), (p(2), 7)],
            "duplicates are adjacent, self-delivery is single"
        );
        assert_eq!(adjust, 2);
    }

    #[test]
    fn permutation_is_deterministic() {
        let plan = FaultPlan::new(4, 77).reorder_rate(RATE_SCALE);
        let mut a: Vec<u32> = (0..10).collect();
        let mut b: Vec<u32> = (0..10).collect();
        plan.permute(3, p(1), &mut a);
        plan.permute(3, p(1), &mut b);
        assert_eq!(a, b);
        assert_ne!(a, (0..10).collect::<Vec<u32>>(), "rate-10000 must shuffle");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn display_summarizes_the_plan() {
        assert_eq!(FaultPlan::none(4).to_string(), "benign");
        let mut side = ProcessSet::empty(4);
        side.insert(p(2));
        let plan = FaultPlan::new(4, 0x10)
            .drop_rate(100)
            .partition(Partition::new(side, 1, 2));
        assert_eq!(plan.to_string(), "seed=0x10 drop=100 partition{2}@r1-2");
    }
}
