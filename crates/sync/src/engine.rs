//! The deterministic round executor.
//!
//! [`run_protocol`] drives `n` [`SyncProtocol`] instances through rounds of
//! send / receive / compute under a [`FailurePattern`], implementing the
//! paper's model faithfully:
//!
//! * broadcasts go out in the predetermined order `p_1, …, p_n`; a process
//!   crashing in round `r` with prefix `a` delivers that round's message to
//!   `p_1, …, p_a` only, and nothing afterwards;
//! * a message sent in round `r` is received in round `r`;
//! * receives are delivered in sender order, then the compute phase runs;
//! * a process whose compute phase returns [`Step::Decide`] stops
//!   participating (its sends for that round already happened — the
//!   forward-then-return shape of Figure 2's lines 13–14).

use std::error::Error;
use std::fmt;
use std::rc::Rc;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use setagree_types::ProcessId;

use crate::adversary::{FailurePattern, UnorderedFailurePattern};
use crate::fault::{FaultInbox, FaultPlan};
use crate::protocol::{Step, SyncProtocol};
use crate::trace::{Outcome, Trace};

/// Error running an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// Some process had not decided after `limit` rounds — the protocol
    /// under test violates termination (or the limit is too small).
    RoundLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// The failure pattern is over a different system size than the
    /// process vector.
    SystemSizeMismatch {
        /// Number of protocol instances supplied.
        processes: usize,
        /// System size of the failure pattern.
        pattern: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::RoundLimitExceeded { limit } => {
                write!(
                    f,
                    "execution exceeded the {limit}-round limit without termination"
                )
            }
            EngineError::SystemSizeMismatch { processes, pattern } => write!(
                f,
                "{processes} protocol instances but the failure pattern is over {pattern} processes"
            ),
        }
    }
}

impl Error for EngineError {}

/// How a crashing sender's last round of messages is delivered — the
/// model knob Section 6.2 discusses.
pub(crate) trait DeliveryPolicy {
    /// System size.
    fn system_size(&self) -> usize;
    /// The round during which `id` crashes, if it is faulty.
    fn crash_round(&self, id: ProcessId) -> Option<usize>;
    /// Whether `sender`'s round-`round` broadcast reaches `recipient`,
    /// given that this is the sender's crash round.
    fn delivers_while_crashing(
        &self,
        sender: ProcessId,
        round: usize,
        recipient: ProcessId,
    ) -> bool;
}

impl DeliveryPolicy for FailurePattern {
    fn system_size(&self) -> usize {
        FailurePattern::system_size(self)
    }
    fn crash_round(&self, id: ProcessId) -> Option<usize> {
        self.spec(id).map(|s| s.round)
    }
    fn delivers_while_crashing(
        &self,
        sender: ProcessId,
        _round: usize,
        recipient: ProcessId,
    ) -> bool {
        // The paper's model: ordered sends, so the crash loses a suffix.
        let prefix = self.spec(sender).map(|s| s.after_sends).unwrap_or(0);
        recipient.index() < prefix
    }
}

impl DeliveryPolicy for UnorderedFailurePattern {
    fn system_size(&self) -> usize {
        UnorderedFailurePattern::system_size(self)
    }
    fn crash_round(&self, id: ProcessId) -> Option<usize> {
        self.spec(id).map(|s| s.round)
    }
    fn delivers_while_crashing(
        &self,
        sender: ProcessId,
        _round: usize,
        recipient: ProcessId,
    ) -> bool {
        self.spec(sender)
            .map(|s| s.delivered_to.contains(recipient))
            .unwrap_or(false)
    }
}

/// Runs the protocol instances (one per process, in process order) under
/// the failure pattern, for at most `max_rounds` rounds — in the paper's
/// **ordered-send** model (a crash loses a suffix of the broadcast).
///
/// # Errors
///
/// * [`EngineError::SystemSizeMismatch`] if `processes.len()` differs from
///   the pattern's system size;
/// * [`EngineError::RoundLimitExceeded`] if some process neither decided
///   nor crashed within `max_rounds` (the returned error intentionally
///   carries no partial trace: a protocol that does not terminate within
///   its proven bound is a bug, not a result).
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn run_protocol<P: SyncProtocol>(
    processes: Vec<P>,
    pattern: &FailurePattern,
    max_rounds: usize,
) -> Result<Trace<P::Output>, EngineError> {
    run_with_policy(processes, pattern, max_rounds)
}

/// Runs under the **standard** synchronous model instead (Attiya–Welch /
/// Lynch): a process that crashes during its send phase loses an
/// *arbitrary subset* of that round's messages, not a suffix. Round-1
/// views are then no longer totally ordered by containment — the ablation
/// that shows the paper's ordered-send assumption is load-bearing for the
/// Figure 2 agreement argument.
///
/// # Errors
///
/// As [`run_protocol`].
pub fn run_protocol_unordered<P: SyncProtocol>(
    processes: Vec<P>,
    pattern: &UnorderedFailurePattern,
    max_rounds: usize,
) -> Result<Trace<P::Output>, EngineError> {
    run_with_policy(processes, pattern, max_rounds)
}

/// Runs under the ordered-send crash model *composed with* a message
/// [`FaultPlan`]: link faults (drop / delay / duplicate / reorder /
/// partition) apply receiver-side on top of the crash pattern's
/// deliveries. `FaultPlan::none` runs trace-identical to
/// [`run_protocol`] — the benign plan takes the full fault path on
/// purpose, so the identity is a property of the machinery, not of a
/// short-circuit (pinned by `tests/fault_equivalence.rs`).
///
/// # Errors
///
/// As [`run_protocol`]; additionally
/// [`EngineError::SystemSizeMismatch`] if the plan's system size
/// differs from the process vector's.
pub fn run_protocol_faulty<P: SyncProtocol>(
    processes: Vec<P>,
    pattern: &FailurePattern,
    plan: &FaultPlan,
    max_rounds: usize,
) -> Result<Trace<P::Output>, EngineError> {
    run_with_policy_faulty(processes, pattern, plan, max_rounds)
}

/// [`run_protocol_faulty`] under the **standard** (arbitrary-subset)
/// crash model instead — the composition `Adversary::Network` exposes.
///
/// # Errors
///
/// As [`run_protocol_faulty`].
pub fn run_protocol_unordered_faulty<P: SyncProtocol>(
    processes: Vec<P>,
    pattern: &UnorderedFailurePattern,
    plan: &FaultPlan,
    max_rounds: usize,
) -> Result<Trace<P::Output>, EngineError> {
    run_with_policy_faulty(processes, pattern, plan, max_rounds)
}

/// The simulator's metric handles: a per-round duration histogram and
/// a delivered-messages counter, shared by the plain and fault-composed
/// loops. The plain loop is the zero-copy broadcast hot path, so every
/// use is hoisted behind one `enabled()` check per execution.
struct EngineMetrics {
    round_duration_us: Arc<setagree_obs::Histogram>,
    messages_delivered: Arc<setagree_obs::Counter>,
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics {
        round_duration_us: setagree_obs::histogram("engine_round_duration_us", &[]),
        messages_delivered: setagree_obs::counter("engine_messages_delivered", &[]),
    })
}

/// Records one round's wall-clock into the engine histogram.
fn record_round(started: Option<Instant>) {
    if let Some(at) = started {
        let us = u64::try_from(at.elapsed().as_micros()).unwrap_or(u64::MAX);
        engine_metrics().round_duration_us.record(us);
    }
}

pub(crate) fn run_with_policy<P: SyncProtocol, D: DeliveryPolicy>(
    processes: Vec<P>,
    policy: &D,
    max_rounds: usize,
) -> Result<Trace<P::Output>, EngineError> {
    let n = processes.len();
    if n != policy.system_size() {
        return Err(EngineError::SystemSizeMismatch {
            processes: n,
            pattern: policy.system_size(),
        });
    }

    let mut procs = processes;
    let mut outcomes: Vec<Option<Outcome<P::Output>>> = (0..n).map(|_| None).collect();
    let mut messages_delivered: u64 = 0;
    let mut rounds_executed = 0;
    let obs_on = setagree_obs::enabled();

    for round in 1..=max_rounds {
        let active: Vec<usize> = (0..n).filter(|&i| outcomes[i].is_none()).collect();
        if active.is_empty() {
            break;
        }
        rounds_executed = round;
        let round_started = obs_on.then(Instant::now);

        // Send phase: collect each active process's broadcast.
        let mut sends: Vec<(usize, P::Msg, bool)> = Vec::with_capacity(active.len());
        for &i in &active {
            let crashing_now = policy.crash_round(ProcessId::new(i)) == Some(round);
            // A process crashing mid-send still "sends" from the
            // protocol's point of view (part of the broadcast is lost).
            let msg = procs[i].message(round);
            sends.push((i, msg, crashing_now));
        }

        // Receive phase: deliveries in sender order, to processes that are
        // still participating this round. Every recipient borrows the one
        // owned message the sender produced — a round's fan-out is n
        // deliveries, zero clones.
        for &(sender, ref msg, crashing_now) in &sends {
            for recipient in 0..n {
                if outcomes[recipient].is_some() {
                    continue;
                }
                if crashing_now
                    && !policy.delivers_while_crashing(
                        ProcessId::new(sender),
                        round,
                        ProcessId::new(recipient),
                    )
                {
                    continue;
                }
                procs[recipient].receive(round, ProcessId::new(sender), msg);
                messages_delivered += 1;
            }
        }

        // Crashes of this round take effect before the compute phase: a
        // process that crashed mid-send performs no local computation.
        for &i in &active {
            if policy.crash_round(ProcessId::new(i)) == Some(round) {
                outcomes[i] = Some(Outcome::Crashed { round });
            }
        }

        // Compute phase.
        for &i in &active {
            if outcomes[i].is_some() {
                continue;
            }
            if let Step::Decide(value) = procs[i].compute(round) {
                outcomes[i] = Some(Outcome::Decided { value, round });
            }
        }
        record_round(round_started);
    }

    if obs_on {
        engine_metrics().messages_delivered.add(messages_delivered);
    }
    if outcomes.iter().any(|o| o.is_none()) {
        return Err(EngineError::RoundLimitExceeded { limit: max_rounds });
    }
    let outcomes = outcomes
        .into_iter()
        .map(|o| o.expect("checked above"))
        .collect();
    Ok(Trace::new(outcomes, rounds_executed, messages_delivered))
}

/// The fault-composed round loop. Delivery counting matches the node
/// mesh's discipline exactly, so faulty simulator traces are
/// byte-identical to faulty loopback traces:
///
/// * a delivery is counted when the sender's broadcast *accepts* it
///   (every unsettled in-prefix recipient), before any link fault —
///   the mesh counts sends into a channel;
/// * drops then subtract and duplicates add at the live recipient's
///   collect ([`FaultInbox::assemble`]'s adjustment); delays adjust
///   nothing (counted at the accepting broadcast, delivered later);
/// * a recipient crashing *this* round never collects — its accepted
///   deliveries stay counted, exactly like a loopback victim departing
///   with an undrained channel.
pub(crate) fn run_with_policy_faulty<P: SyncProtocol, D: DeliveryPolicy>(
    processes: Vec<P>,
    policy: &D,
    plan: &FaultPlan,
    max_rounds: usize,
) -> Result<Trace<P::Output>, EngineError> {
    let n = processes.len();
    if n != policy.system_size() {
        return Err(EngineError::SystemSizeMismatch {
            processes: n,
            pattern: policy.system_size(),
        });
    }
    if n != plan.n() {
        return Err(EngineError::SystemSizeMismatch {
            processes: n,
            pattern: plan.n(),
        });
    }

    let mut procs = processes;
    let mut outcomes: Vec<Option<Outcome<P::Output>>> = (0..n).map(|_| None).collect();
    let mut inboxes: Vec<FaultInbox<Rc<P::Msg>>> = (0..n)
        .map(|i| FaultInbox::new(plan.clone(), ProcessId::new(i)))
        .collect();
    let mut delivered: i64 = 0;
    let mut rounds_executed = 0;
    let obs_on = setagree_obs::enabled();

    for round in 1..=max_rounds {
        let active: Vec<usize> = (0..n).filter(|&i| outcomes[i].is_none()).collect();
        if active.is_empty() {
            break;
        }
        rounds_executed = round;
        let round_started = obs_on.then(Instant::now);

        // Send phase.
        let mut sends: Vec<(usize, Rc<P::Msg>, bool)> = Vec::with_capacity(active.len());
        for &i in &active {
            let crashing_now = policy.crash_round(ProcessId::new(i)) == Some(round);
            let msg = Rc::new(procs[i].message(round));
            sends.push((i, msg, crashing_now));
        }

        // Delivery determination + broadcast-accept counting.
        let mut arrivals: Vec<Vec<(ProcessId, Rc<P::Msg>)>> = (0..n).map(|_| Vec::new()).collect();
        for &(sender, ref msg, crashing_now) in &sends {
            for recipient in 0..n {
                if outcomes[recipient].is_some() {
                    continue;
                }
                if crashing_now
                    && !policy.delivers_while_crashing(
                        ProcessId::new(sender),
                        round,
                        ProcessId::new(recipient),
                    )
                {
                    continue;
                }
                delivered += 1;
                arrivals[recipient].push((ProcessId::new(sender), Rc::clone(msg)));
            }
        }

        // This round's crashes take effect before the receive phase: a
        // victim departs without collecting its crash-round inbox.
        for &i in &active {
            if policy.crash_round(ProcessId::new(i)) == Some(round) {
                outcomes[i] = Some(Outcome::Crashed { round });
            }
        }

        // Receive phase: live recipients assemble through the plan.
        for &i in &active {
            if outcomes[i].is_some() {
                continue;
            }
            let (inbox, adjust) = inboxes[i].assemble(round, std::mem::take(&mut arrivals[i]));
            delivered += adjust;
            for (from, msg) in inbox {
                procs[i].receive(round, from, &msg);
            }
        }

        // Compute phase.
        for &i in &active {
            if outcomes[i].is_some() {
                continue;
            }
            if let Step::Decide(value) = procs[i].compute(round) {
                outcomes[i] = Some(Outcome::Decided { value, round });
            }
        }
        record_round(round_started);
    }

    if obs_on {
        engine_metrics()
            .messages_delivered
            .add(delivered.max(0) as u64);
    }
    if outcomes.iter().any(|o| o.is_none()) {
        return Err(EngineError::RoundLimitExceeded { limit: max_rounds });
    }
    let outcomes = outcomes
        .into_iter()
        .map(|o| o.expect("checked above"))
        .collect();
    debug_assert!(delivered >= 0, "drops only subtract accepted deliveries");
    Ok(Trace::new(
        outcomes,
        rounds_executed,
        delivered.max(0) as u64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::CrashSpec;
    use setagree_types::View;

    /// Test protocol: floods the set of known inputs for `rounds` rounds,
    /// then decides the full view it assembled (exposes delivery order and
    /// prefix semantics to the tests).
    #[derive(Debug)]
    struct Flood {
        rounds: usize,
        view: View<u32>,
    }

    impl Flood {
        fn new(me: usize, n: usize, input: u32, rounds: usize) -> Self {
            let mut view = View::all_bottom(n);
            view.set(ProcessId::new(me), input);
            Flood { rounds, view }
        }
    }

    impl SyncProtocol for Flood {
        type Msg = View<u32>;
        type Output = View<u32>;

        fn message(&mut self, _round: usize) -> View<u32> {
            self.view.clone()
        }

        fn receive(&mut self, _round: usize, _from: ProcessId, msg: &View<u32>) {
            self.view.merge_from(msg);
        }

        fn compute(&mut self, round: usize) -> Step<View<u32>> {
            if round >= self.rounds {
                Step::Decide(self.view.clone())
            } else {
                Step::Continue
            }
        }
    }

    fn flood_system(n: usize, rounds: usize) -> Vec<Flood> {
        (0..n)
            .map(|i| Flood::new(i, n, (i + 1) as u32, rounds))
            .collect()
    }

    #[test]
    fn failure_free_round_one_views_are_full() {
        let trace = run_protocol(flood_system(4, 1), &FailurePattern::none(4), 5).unwrap();
        for o in trace.outcomes() {
            let view = o.decided_value().unwrap();
            assert_eq!(view.count_bottom(), 0);
        }
        assert_eq!(trace.rounds_executed(), 1);
        // 4 senders × 4 recipients.
        assert_eq!(trace.messages_delivered(), 16);
    }

    #[test]
    fn initial_crash_leaves_bottom_entry() {
        let pattern = FailurePattern::initial(4, [ProcessId::new(2)]).unwrap();
        let trace = run_protocol(flood_system(4, 1), &pattern, 5).unwrap();
        for (i, o) in trace.outcomes().iter().enumerate() {
            if i == 2 {
                assert!(o.is_crashed());
                continue;
            }
            let view = o.decided_value().unwrap();
            assert_eq!(view.get(ProcessId::new(2)), None, "p3 never spoke");
            assert_eq!(view.count_bottom(), 1);
        }
    }

    #[test]
    fn prefix_crash_delivers_to_prefix_only() {
        // p1 crashes in round 1 after reaching p1 and p2.
        let mut pattern = FailurePattern::none(4);
        pattern
            .crash(ProcessId::new(0), CrashSpec::new(1, 2))
            .unwrap();
        let trace = run_protocol(flood_system(4, 1), &pattern, 5).unwrap();
        // p2 heard p1's input (prefix includes index 1)…
        let v2 = trace.outcome(ProcessId::new(1)).decided_value().unwrap();
        assert_eq!(v2.get(ProcessId::new(0)), Some(&1));
        // …but p3 and p4 did not.
        for i in [2, 3] {
            let v = trace.outcome(ProcessId::new(i)).decided_value().unwrap();
            assert_eq!(v.get(ProcessId::new(0)), None);
        }
    }

    #[test]
    fn round_one_views_are_ordered_by_containment() {
        // The paper's key structural property under ordered sends: any two
        // round-1 views are comparable. Exercise several prefixes at once.
        let mut pattern = FailurePattern::none(5);
        pattern
            .crash(ProcessId::new(0), CrashSpec::new(1, 1))
            .unwrap();
        pattern
            .crash(ProcessId::new(4), CrashSpec::new(1, 3))
            .unwrap();
        let trace = run_protocol(flood_system(5, 1), &pattern, 5).unwrap();
        let views: Vec<View<u32>> = trace
            .outcomes()
            .iter()
            .filter_map(|o| o.decided_value().cloned())
            .collect();
        for a in &views {
            for b in &views {
                assert!(
                    a.is_contained_in(b) || b.is_contained_in(a),
                    "round-1 views must form a containment chain: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn crash_in_later_round_stops_participation() {
        let mut pattern = FailurePattern::none(3);
        pattern
            .crash(ProcessId::new(1), CrashSpec::new(2, 0))
            .unwrap();
        let trace = run_protocol(flood_system(3, 3), &pattern, 5).unwrap();
        assert!(trace.outcome(ProcessId::new(1)).is_crashed());
        assert_eq!(trace.outcome(ProcessId::new(1)).decision_round(), None);
        // Others still decide at round 3.
        assert_eq!(trace.outcome(ProcessId::new(0)).decision_round(), Some(3));
    }

    #[test]
    fn decided_process_stops_sending() {
        /// Decides in round 1, while others flood for 2 rounds; a decided
        /// process must not contribute round-2 messages.
        #[derive(Debug)]
        struct CountRecv {
            quit_early: bool,
            round2_msgs: usize,
        }
        impl SyncProtocol for CountRecv {
            type Msg = ();
            type Output = usize;
            fn message(&mut self, _round: usize) {}
            fn receive(&mut self, round: usize, _from: ProcessId, _msg: &()) {
                if round == 2 {
                    self.round2_msgs += 1;
                }
            }
            fn compute(&mut self, round: usize) -> Step<usize> {
                if self.quit_early || round == 2 {
                    Step::Decide(self.round2_msgs)
                } else {
                    Step::Continue
                }
            }
        }
        let procs = vec![
            CountRecv {
                quit_early: true,
                round2_msgs: 0,
            },
            CountRecv {
                quit_early: false,
                round2_msgs: 0,
            },
            CountRecv {
                quit_early: false,
                round2_msgs: 0,
            },
        ];
        let trace = run_protocol(procs, &FailurePattern::none(3), 5).unwrap();
        // p1 decided in round 1; p2 and p3 receive only each other in round 2.
        assert_eq!(
            *trace.outcome(ProcessId::new(1)).decided_value().unwrap(),
            2
        );
        assert_eq!(
            *trace.outcome(ProcessId::new(2)).decided_value().unwrap(),
            2
        );
    }

    #[test]
    fn round_limit_is_reported() {
        /// Never decides.
        #[derive(Debug)]
        struct Stubborn;
        impl SyncProtocol for Stubborn {
            type Msg = ();
            type Output = u32;
            fn message(&mut self, _round: usize) {}
            fn receive(&mut self, _round: usize, _from: ProcessId, _msg: &()) {}
            fn compute(&mut self, _round: usize) -> Step<u32> {
                Step::Continue
            }
        }
        let err = run_protocol(vec![Stubborn, Stubborn], &FailurePattern::none(2), 3).unwrap_err();
        assert_eq!(err, EngineError::RoundLimitExceeded { limit: 3 });
    }

    #[test]
    fn system_size_mismatch_is_reported() {
        let err = run_protocol(flood_system(3, 1), &FailurePattern::none(4), 3).unwrap_err();
        assert_eq!(
            err,
            EngineError::SystemSizeMismatch {
                processes: 3,
                pattern: 4
            }
        );
    }

    #[test]
    fn everyone_crashed_terminates_cleanly() {
        // All but one crash initially; the survivor decides alone.
        let pattern = FailurePattern::initial(3, [ProcessId::new(0), ProcessId::new(1)]).unwrap();
        let trace = run_protocol(flood_system(3, 1), &pattern, 5).unwrap();
        assert_eq!(trace.crashed_count(), 2);
        assert_eq!(trace.decided_count(), 1);
        let view = trace.outcome(ProcessId::new(2)).decided_value().unwrap();
        assert_eq!(view.count_bottom(), 2);
    }

    #[test]
    fn deterministic_replay() {
        let mut pattern = FailurePattern::none(4);
        pattern
            .crash(ProcessId::new(3), CrashSpec::new(1, 2))
            .unwrap();
        let a = run_protocol(flood_system(4, 2), &pattern, 5).unwrap();
        let b = run_protocol(flood_system(4, 2), &pattern, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn benign_plan_is_trace_identical_to_the_plain_path() {
        use crate::fault::FaultPlan;
        let mut pattern = FailurePattern::none(5);
        pattern
            .crash(ProcessId::new(0), CrashSpec::new(1, 2))
            .unwrap();
        pattern
            .crash(ProcessId::new(4), CrashSpec::new(2, 0))
            .unwrap();
        let plain = run_protocol(flood_system(5, 3), &pattern, 10).unwrap();
        let faulty =
            run_protocol_faulty(flood_system(5, 3), &pattern, &FaultPlan::none(5), 10).unwrap();
        assert_eq!(plain, faulty);
    }

    #[test]
    fn dropped_links_lose_exactly_their_messages() {
        use crate::fault::FaultPlan;
        // Every peer link drops: each process only ever sees its own
        // input, and the delivered count collapses to self-deliveries.
        let plan = FaultPlan::new(3, 1).drop_rate(crate::fault::RATE_SCALE);
        let trace =
            run_protocol_faulty(flood_system(3, 1), &FailurePattern::none(3), &plan, 5).unwrap();
        for (i, o) in trace.outcomes().iter().enumerate() {
            let view = o.decided_value().unwrap();
            assert_eq!(view.count_bottom(), 2, "p{i} heard only itself");
        }
        assert_eq!(trace.messages_delivered(), 3);
    }

    #[test]
    fn duplicated_links_double_the_delivered_count() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::new(3, 1).duplicate_rate(crate::fault::RATE_SCALE);
        let trace =
            run_protocol_faulty(flood_system(3, 1), &FailurePattern::none(3), &plan, 5).unwrap();
        // 3 self-deliveries + 6 peer links delivered twice each.
        assert_eq!(trace.messages_delivered(), 15);
        for o in trace.outcomes() {
            assert_eq!(o.decided_value().unwrap().count_bottom(), 0);
        }
    }

    #[test]
    fn delayed_messages_arrive_in_a_later_round() {
        use crate::fault::FaultPlan;
        // All peer messages delayed by exactly one round: a two-round
        // flood still assembles every input (round-1 messages arrive at
        // round 2), so views are full even though round-1 views are not.
        let plan = FaultPlan::new(4, 3).delay_rate(crate::fault::RATE_SCALE, 1);
        let trace =
            run_protocol_faulty(flood_system(4, 2), &FailurePattern::none(4), &plan, 5).unwrap();
        for o in trace.outcomes() {
            assert_eq!(o.decided_value().unwrap().count_bottom(), 0);
        }
    }

    #[test]
    fn faulty_plan_size_mismatch_is_reported() {
        use crate::fault::FaultPlan;
        let err = run_protocol_faulty(
            flood_system(3, 1),
            &FailurePattern::none(3),
            &FaultPlan::none(4),
            5,
        )
        .unwrap_err();
        assert_eq!(
            err,
            EngineError::SystemSizeMismatch {
                processes: 3,
                pattern: 4
            }
        );
    }

    #[test]
    fn faulty_replay_is_deterministic() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::new(4, 0xD1CE)
            .drop_rate(2000)
            .delay_rate(2000, 2)
            .duplicate_rate(1000)
            .reorder_rate(5000);
        let mut pattern = FailurePattern::none(4);
        pattern
            .crash(ProcessId::new(3), CrashSpec::new(2, 1))
            .unwrap();
        let a = run_protocol_faulty(flood_system(4, 3), &pattern, &plan, 10).unwrap();
        let b = run_protocol_faulty(flood_system(4, 3), &pattern, &plan, 10).unwrap();
        assert_eq!(a, b);
    }
}
