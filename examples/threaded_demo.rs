//! Run the condition-based algorithm on real OS threads with crossbeam
//! channels, and confirm the execution is observationally identical to the
//! deterministic simulator.
//!
//! ```text
//! cargo run --example threaded_demo
//! ```

use setagree::conditions::MaxCondition;
use setagree::core::{ConditionBased, ConditionBasedConfig};
use setagree::runtime::run_threaded;
use setagree::sync::{run_protocol, CrashSpec, FailurePattern};
use setagree::types::{InputVector, ProcessId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ConditionBasedConfig::builder(6, 3, 2)
        .condition_degree(2)
        .ell(1)
        .build()?;
    let oracle = MaxCondition::new(config.legality());
    let input = InputVector::new(vec![9u32, 9, 9, 4, 1, 9]);

    let mut pattern = FailurePattern::none(6);
    pattern.crash(ProcessId::new(4), CrashSpec::new(1, 3))?;

    let build = || -> Vec<ConditionBased<u32, MaxCondition>> {
        ProcessId::all(6)
            .map(|id| ConditionBased::new(config, id, *input.get(id), oracle))
            .collect()
    };

    println!("running {config} on 6 OS threads (one crash mid-broadcast)…");
    let threaded = run_threaded(build(), &pattern, config.round_limit())?;
    println!("{threaded}");

    let simulated = run_protocol(build(), &pattern, config.round_limit())?;
    assert_eq!(
        threaded, simulated,
        "threaded execution must match the deterministic simulator"
    );
    println!("threaded trace ≡ simulator trace (same decisions, rounds and deliveries) ✓");
    Ok(())
}
