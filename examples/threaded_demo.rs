//! Run the condition-based algorithm on real OS threads, and confirm the
//! execution is observationally identical to the deterministic simulator
//! — the same `Scenario`, run on both `Executor`s.
//!
//! ```text
//! cargo run --example threaded_demo
//! ```

use setagree::conditions::MaxCondition;
use setagree::core::{ConditionBasedConfig, Executor, Scenario};
use setagree::sync::{CrashSpec, FailurePattern};
use setagree::types::{InputVector, ProcessId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ConditionBasedConfig::builder(6, 3, 2)
        .condition_degree(2)
        .ell(1)
        .build()?;
    let oracle = MaxCondition::new(config.legality());
    let input = InputVector::new(vec![9u32, 9, 9, 4, 1, 9]);

    let mut pattern = FailurePattern::none(6);
    pattern.crash(ProcessId::new(4), CrashSpec::new(1, 3))?;

    let scenario = Scenario::condition_based(config, oracle)
        .input(input)
        .pattern(pattern);

    println!("running {config} on 6 OS threads (one crash mid-broadcast)…");
    let threaded = scenario.clone().executor(Executor::Threaded).run()?;
    println!("{threaded}");

    let simulated = scenario.executor(Executor::Simulator).run()?;
    assert_eq!(
        threaded.trace(),
        simulated.trace(),
        "threaded execution must match the deterministic simulator"
    );
    println!("threaded trace ≡ simulator trace (same decisions, rounds and deliveries) ✓");
    Ok(())
}
