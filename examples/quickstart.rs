//! Quickstart: solve 2-set agreement among 8 processes with a
//! condition-based speedup, through the unified `Scenario` API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use setagree::conditions::MaxCondition;
use setagree::core::{ConditionBasedConfig, Scenario};
use setagree::types::InputVector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A system of n = 8 processes, at most t = 4 crashes, deciding at most
    // k = 2 values. We instantiate the algorithm with the maximal
    // (x, ℓ) = (t − d, ℓ) = (2, 1)-legal condition: "some value appears in
    // more than 2 entries".
    let config = ConditionBasedConfig::builder(8, 4, 2)
        .condition_degree(2)
        .ell(1)
        .build()?;
    let oracle = MaxCondition::new(config.legality());

    println!("configuration: {config}");
    println!(
        "condition:     {oracle} (d = {}, so x = t − d = {})",
        config.d(),
        config.legality().x()
    );
    println!();

    // Scenario 1: the proposals satisfy the condition (7 is dominant).
    // No .pattern(...) means a failure-free run.
    let favourable = InputVector::new(vec![7u32, 7, 7, 7, 2, 7, 1, 7]);
    let report = Scenario::condition_based(config, oracle)
        .input(favourable.clone())
        .run()?;
    println!("input {favourable} — in condition");
    println!(
        "  decided {:?} in {:?} rounds (classical bound: {})",
        report.decided_values(),
        report.decision_round(),
        config.rounds_outside_condition()
    );
    assert!(report.satisfies_all());

    // Scenario 2: scattered proposals (outside the condition) — the
    // algorithm falls back to the classical ⌊t/k⌋ + 1 bound, never worse.
    let scattered = InputVector::new(vec![1u32, 2, 3, 4, 5, 6, 7, 8]);
    let report = Scenario::condition_based(config, oracle)
        .input(scattered.clone())
        .run()?;
    println!("input {scattered} — outside condition");
    println!(
        "  decided {:?} in {:?} rounds (bound: {})",
        report.decided_values(),
        report.decision_round(),
        config.rounds_outside_condition()
    );
    assert!(report.satisfies_all());

    Ok(())
}
