//! Engineering a bespoke condition: from domain knowledge to a verified
//! (x, ℓ)-legal condition to a running protocol.
//!
//! Scenario: a 5-node control plane votes on one of a few known
//! *failover plans*. Domain knowledge says the vote always follows one of
//! three patterns (quorums lean one way, with at most one dissenter).
//! That knowledge *is* a condition — this example checks how much crash
//! tolerance it buys, finds a recognizing function automatically, and runs
//! the Figure 2 algorithm with it.
//!
//! ```text
//! cargo run --example condition_engineering
//! ```

use setagree::conditions::{legality, witness, Condition, ExplicitOracle, LegalityParams, TableFn};
use setagree::core::{ConditionBasedConfig, Scenario};
use setagree::sync::{CrashSpec, FailurePattern};
use setagree::types::{InputVector, ProcessId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The three vote patterns the fleet is known to produce. Plans are
    // numbered 10, 20, 30.
    let patterns = vec![
        InputVector::new(vec![20u32, 20, 20, 20, 10]), // strong lean to 20
        InputVector::new(vec![20u32, 20, 30, 30, 30]), // split toward 30
        InputVector::new(vec![10u32, 10, 10, 10, 10]), // unanimous 10
    ];
    let condition = Condition::from_vectors(patterns.clone())?;
    println!("domain condition: {condition}");

    // How strong is it? Probe (x, ℓ) pairs with the exhaustive search.
    println!("legality profile (exhaustive recognizing-function search):");
    let mut best: Option<(LegalityParams, TableFn<u32>)> = None;
    for x in (0..4).rev() {
        for ell in 1..=2 {
            let params = LegalityParams::new(x, ell)?;
            match witness::find_recognizing(&condition, params) {
                Some(h) => {
                    println!("  {params}: LEGAL");
                    if best.is_none() && ell == 1 {
                        best = Some((params, h));
                    }
                }
                None => println!("  {params}: not legal"),
            }
        }
    }
    let (params, h) = best.expect("the patterns are mutually distant enough");
    println!();
    println!("using {params} with the discovered decoder:");
    for (vector, decoded) in h.iter() {
        println!("  {vector} ↦ {decoded:?}");
    }
    assert!(legality::check(&condition, &h, params).is_ok());

    // x = t − d fixes the protocol parameters: pick t = 3 crashes and the
    // matching degree d = t − x.
    let t = 3;
    let d = t - params.x();
    let config = ConditionBasedConfig::builder(5, t, 1)
        .condition_degree(d)
        .ell(1)
        .build()?;
    let oracle = ExplicitOracle::new(condition, h, params);
    println!();
    println!("protocol: {config} (consensus with a condition fast path)");

    // A real vote following pattern 1, with two mid-broadcast crashes.
    let vote = &patterns[0];
    let mut pattern = FailurePattern::none(5);
    pattern.crash(ProcessId::new(4), CrashSpec::new(1, 1))?;
    pattern.crash(ProcessId::new(1), CrashSpec::new(2, 3))?;
    let report = Scenario::condition_based(config, oracle)
        .input(vote.clone())
        .pattern(pattern.clone())
        .run()?;
    println!("vote {vote} under {pattern}:");
    println!("  {report}");
    assert!(report.satisfies_all());
    assert!(
        report.decision_round().unwrap() <= 2,
        "the pattern-aware fast path beats the t + 1 = 4 round consensus bound"
    );
    println!();
    println!(
        "decided {:?} in {} rounds — unconditioned consensus needs {} rounds",
        report.decided_values(),
        report.decision_round().unwrap(),
        t + 1
    );
    Ok(())
}
