//! Run the condition-based algorithm on the networked execution tier —
//! real node tasks over the loopback transport, with one node *killed*
//! mid-broadcast — and confirm the execution is observationally
//! identical to the deterministic simulator.
//!
//! The loopback tier is the in-process face of `setagree-node`: the same
//! round loop that drives real TCP node processes (try
//! `cargo run --bin setagree-node -- testnet --input 3,9,1,4,7 --t 2 --crash 1:1:2`
//! for the multi-process version), but over the shared delivery mesh, so
//! whole `Trace`s can be compared against the simulator.
//!
//! ```text
//! cargo run --example testnet_demo
//! ```

use setagree::conditions::MaxCondition;
use setagree::core::{ConditionBasedConfig, Executor, Scenario, TransportKind};
use setagree::sync::{CrashSpec, FailurePattern};
use setagree::types::{InputVector, ProcessId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ConditionBasedConfig::builder(6, 3, 2)
        .condition_degree(2)
        .ell(1)
        .build()?;
    let oracle = MaxCondition::new(config.legality());
    let input = InputVector::new(vec![9u32, 9, 9, 4, 1, 9]);

    // p5 is killed in round 1 after reaching only 3 of its 6 peers: its
    // node task genuinely departs — the loopback analogue of the TCP
    // tier aborting the victim's process.
    let mut pattern = FailurePattern::none(6);
    pattern.crash(ProcessId::new(4), CrashSpec::new(1, 3))?;

    let scenario = Scenario::condition_based(config, oracle)
        .input(input)
        .pattern(pattern);

    println!("running {config} on 6 loopback nodes (one killed mid-broadcast)…");
    let networked = scenario
        .clone()
        .executor(Executor::Networked {
            transport: TransportKind::Loopback,
        })
        .run()?;
    println!("{networked}");

    let simulated = scenario.executor(Executor::Simulator).run()?;
    assert_eq!(
        networked.trace(),
        simulated.trace(),
        "networked execution must match the deterministic simulator"
    );
    println!("networked trace ≡ simulator trace (same decisions, rounds and deliveries) ✓");
    Ok(())
}
