//! Domain scenario: asynchronous sensor fusion through shared memory
//! (Section 4 of the paper).
//!
//! Nine sensor nodes write their calibrated readings into a shared
//! blackboard (single-writer registers) and must converge on at most
//! ℓ = 2 reference readings despite up to x = 2 node crashes — in a fully
//! **asynchronous** system, where plain 2-set agreement with 2 crashes is
//! impossible. The condition that rescues solvability: calibrated fleets
//! produce *clustered* readings, i.e. the two most common readings cover
//! more than x sensors — an (x, ℓ)-legal condition.
//!
//! ```text
//! cargo run --example sensor_quorum
//! ```

use setagree::conditions::{LegalityParams, MaxCondition};
use setagree::core::{AsyncCrashes, Executor, Scenario};
use setagree::types::{InputVector, ProcessId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let x = 2; // crash tolerance
    let ell = 2; // at most two reference readings may be adopted
    let params = LegalityParams::new(x, ell)?;
    let oracle = MaxCondition::new(params);

    // Readings in tenths of a degree: the fleet clusters on 215 and 216.
    let readings = InputVector::new(vec![215u32, 216, 215, 216, 215, 214, 216, 215, 216]);
    println!("sensor readings: {readings}");
    println!(
        "condition {oracle}: {}",
        if oracle.contains(&readings) {
            "satisfied"
        } else {
            "violated"
        }
    );

    // Two nodes die: one before writing anything, one right after its write.
    let crashes = AsyncCrashes::none()
        .crash_after(ProcessId::new(5), 0)
        .crash_after(ProcessId::new(8), 1);

    // Run several adversarial interleavings; agreement must hold in all.
    // The seed is part of the executor, so the same Scenario replays one
    // schedule per executor value.
    let scenario = Scenario::async_set_agreement(readings.len(), params, oracle)
        .input(readings.clone())
        .pattern(crashes);
    for seed in 0..5 {
        let report = scenario
            .clone()
            .executor(Executor::AsyncSharedMemory { seed })
            .run()?;
        println!(
            "schedule {seed}: adopted {:?} ({} steps) — {}",
            report.decided_values(),
            report.total_steps().expect("asynchronous run"),
            report
        );
        assert!(
            report.satisfies_termination(),
            "termination under ≤ x crashes"
        );
        assert!(
            report.decided_values().len() <= ell,
            "at most ℓ reference readings"
        );
        assert!(report.satisfies_validity(), "validity");
    }
    println!();
    println!("asynchronous 2-set agreement reached despite 2 crashes — impossible without the condition.");
    Ok(())
}
