//! Explore the structure of the paper: the lattice of legality families
//! (Figure 1), the synchronous hierarchies `S^d_t[ℓ]` (Section 5) and the
//! size/speed trade-off they encode.
//!
//! ```text
//! cargo run --example lattice_explorer
//! ```

use setagree::conditions::counting;
use setagree::conditions::lattice::{self, FamilyRelation};
use setagree::conditions::{LegalityParams, SdtParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t = 5;
    let k = 2;
    let n = 10;
    let m = 6u32;

    println!("The ℓ-fixed hierarchy S^d_{t}[ℓ=2] and what each member buys you");
    println!("(reference system: n = {n}, m = {m}, agreement degree k = {k})");
    println!();
    println!(
        "{:<12} {:<12} {:>14} {:>10} {:>9}",
        "member", "(x, ℓ)", "|C_max|", "R in C", "trivial?"
    );
    for s in SdtParams::degree_chain(t, 2)? {
        let params = s.legality();
        let size = counting::nb(n, m, params);
        let r_in = (s.degree() + s.ell() - 1) / k + 1;
        println!(
            "{:<12} {:<12} {:>14} {:>10} {:>9}",
            s.to_string(),
            params.to_string(),
            size,
            r_in,
            s.contains_trivial_condition()
        );
    }
    println!();
    println!("reading: larger d → more conditions (easier to satisfy) but slower decisions.");
    println!();

    println!("Family relations around (x, ℓ) = (2, 2):");
    let center = LegalityParams::new(2, 2)?;
    for (dx, dl) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1), (1, 1), (-1, -1)] {
        let x = (center.x() as i64 + dx).max(0) as usize;
        let l = (center.ell() as i64 + dl).max(1) as usize;
        let other = LegalityParams::new(x, l)?;
        if other == center {
            continue;
        }
        let rel = match lattice::relation(center, other) {
            FamilyRelation::Equal => "=",
            FamilyRelation::StrictlyIncluded => "⊊",
            FamilyRelation::StrictlyIncludes => "⊋",
            FamilyRelation::Incomparable => "∦",
        };
        println!("  F{center} {rel} F{other}");
    }
    println!();
    println!(
        "meet of F(3,1) and F(1,2): F{}   join: F{}",
        lattice::meet(LegalityParams::new(3, 1)?, LegalityParams::new(1, 2)?),
        lattice::join(LegalityParams::new(3, 1)?, LegalityParams::new(1, 2)?)
    );
    Ok(())
}
