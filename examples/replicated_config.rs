//! Domain scenario: a replicated service choosing its next configuration
//! epoch under crash faults.
//!
//! Twelve replicas each propose the configuration epoch they believe
//! should be activated next. Full consensus would cost `t + 1 = 6` rounds
//! in the worst case; the operators can tolerate up to `k = 2` concurrent
//! epochs (the reconciler merges them later), and in the common case most
//! replicas propose the same epoch — exactly the situation the
//! condition-based approach exploits: when a proposal is dominant, the
//! system commits in 2 rounds even though crashes happen mid-broadcast.
//!
//! ```text
//! cargo run --example replicated_config
//! ```

use setagree::conditions::MaxCondition;
use setagree::core::{ConditionBasedConfig, Scenario};
use setagree::sync::{CrashSpec, FailurePattern};
use setagree::types::{InputVector, ProcessId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12;
    let t = 5;
    let k = 2;
    // Degree d = 3 → the condition tolerates x = t − d = 2 missing
    // replicas while still decoding the dominant epoch.
    let config = ConditionBasedConfig::builder(n, t, k)
        .condition_degree(3)
        .ell(1)
        .build()?;
    let oracle = MaxCondition::new(config.legality());

    // Epoch 42 is the healthy roll-out; three lagging replicas still
    // propose the previous epoch 41. (With the max_ℓ condition the decoded
    // epoch is the *greatest* dominant one, so laggards must lag, not lead.)
    let proposals = InputVector::new(vec![42u32, 42, 42, 41, 42, 42, 41, 42, 42, 41, 42, 42]);
    println!("replica proposals: {proposals}");
    println!(
        "dominant epoch present: {}",
        if oracle.contains(&proposals) {
            "yes (input ∈ C)"
        } else {
            "no"
        }
    );

    // Two replicas crash while broadcasting (prefix deliveries), a third
    // dies a round later — all within the t = 5 budget.
    let mut pattern = FailurePattern::none(n);
    pattern.crash(ProcessId::new(3), CrashSpec::new(1, 7))?;
    pattern.crash(ProcessId::new(9), CrashSpec::new(1, 2))?;
    pattern.crash(ProcessId::new(6), CrashSpec::new(2, 0))?;
    println!("failure pattern:   {pattern}");
    println!();

    let report = Scenario::condition_based(config, oracle)
        .input(proposals.clone())
        .pattern(pattern)
        .run()?;
    println!("{report}");
    println!();
    let trace = report.trace().expect("round-based run");
    for (i, outcome) in trace.outcomes().iter().enumerate() {
        println!("  replica {:2}: {:?}", i + 1, outcome);
    }

    assert!(report.satisfies_all());
    assert!(
        report.decision_round().unwrap() == 2,
        "the dominant-epoch fast path commits in two rounds"
    );
    println!();
    println!(
        "committed {:?} in {} round(s); classical consensus bound would be {} rounds",
        report.decided_values(),
        report.decision_round().unwrap(),
        t + 1
    );
    Ok(())
}
